// The advice-driven Session runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "advisor/session.hpp"
#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace obx;
using namespace obx::advisor;

struct Harness {
  trace::Program program;
  std::vector<Word> inputs;
  std::vector<Word> expected;
  std::size_t p;

  Harness(const std::string& name, std::size_t n, std::size_t lanes) : p(lanes) {
    const algos::Algorithm& algo = algos::find(name);
    program = algo.make_program(n);
    Rng rng(12);
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algo.make_input(n, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
      const auto ref = algo.reference(n, one);
      expected.insert(expected.end(), ref.begin(), ref.end());
    }
  }

  SessionReport run(const Session& session, std::vector<Word>& got) const {
    got.assign(expected.size(), Word{0});
    return session.run(
        program, p,
        [&](Lane j, std::span<Word> dst) {
          const Word* src = inputs.data() + j * program.input_words;
          std::copy(src, src + program.input_words, dst.begin());
        },
        [&](Lane j, std::span<const Word> out) {
          std::copy(out.begin(), out.end(),
                    got.begin() +
                        static_cast<std::ptrdiff_t>(j * program.output_words));
        });
  }
};

TEST(Session, ProducesCorrectOutputsWithDefaults) {
  const Harness h("bitonic-sort", 64, 50);
  std::vector<Word> got;
  const SessionReport report = h.run(Session(), got);
  EXPECT_EQ(got, h.expected);
  EXPECT_EQ(report.lanes, 50u);
  // p = 50 is not a width multiple, so column-wise warps straddle
  // transaction groups and the arrangement search flips to blocked.
  EXPECT_EQ(report.arrangement, bulk::Arrangement::kBlocked);
  EXPECT_GT(report.simulated_units, 0u);
  EXPECT_DOUBLE_EQ(report.host_seconds,
                   report.host_execute_seconds + report.host_callback_seconds);
}

TEST(Session, DefaultWorkersUseTheHostCores) {
  EXPECT_EQ(SessionOptions{}.workers, bulk::default_worker_count());
  EXPECT_GE(SessionOptions{}.workers, 1u);
}

TEST(Session, MemoryBudgetControlsBatching) {
  const Harness h("prefix-sums", 32, 40);
  // Per lane ~ 32+32+2+32 = 98 words; a 500-word budget forces ~5-lane
  // batches.
  SessionOptions options;
  options.memory_budget_words = 500;
  std::vector<Word> got;
  const SessionReport report = h.run(Session(options), got);
  EXPECT_EQ(got, h.expected);
  EXPECT_LE(report.batch_lanes, 5u);
  EXPECT_GE(report.batches, 8u);
}

TEST(Session, TinyBudgetStillRunsOneLaneBatches) {
  const Harness h("horner", 8, 7);
  SessionOptions options;
  options.memory_budget_words = 1;  // below one lane: clamps to 1 lane
  std::vector<Word> got;
  const SessionReport report = h.run(Session(options), got);
  EXPECT_EQ(got, h.expected);
  EXPECT_EQ(report.batch_lanes, 1u);
  EXPECT_EQ(report.batches, 7u);
}

TEST(Session, ForcedArrangementHonoured) {
  const Harness h("prefix-sums", 16, 20);
  SessionOptions options;
  options.arrangement = bulk::Arrangement::kRowWise;
  std::vector<Word> got;
  const SessionReport report = h.run(Session(options), got);
  EXPECT_EQ(got, h.expected);
  EXPECT_EQ(report.arrangement, bulk::Arrangement::kRowWise);
}

TEST(Session, OptimiserEngagesOnNaiveCode) {
  // A naively recorded program: Session should shrink it and still produce
  // the right output.
  const std::size_t n = 32;
  trace::Recorder rec(2 * n);
  for (Addr i = 0; i + 1 < n; ++i) {
    auto s = rec.fload(i) + rec.fload(i + 1);
    rec.fstore(n + i, s);
  }
  const trace::Program naive = std::move(rec).finish("naive-pairs", n, n, n);

  Rng rng(5);
  const auto input = rng.words_f64(n, -10, 10);
  std::vector<Word> got(n, 0);
  const Session session;
  const SessionReport report = session.run(
      naive, 1,
      [&](Lane, std::span<Word> dst) { std::copy(input.begin(), input.end(), dst.begin()); },
      [&](Lane, std::span<const Word> out) {
        std::copy(out.begin(), out.end(), got.begin());
      });
  EXPECT_TRUE(report.optimised);
  EXPECT_LT(report.memory_steps_after, report.memory_steps_before);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double a = std::bit_cast<double>(input[i]);
    const double b = std::bit_cast<double>(input[i + 1]);
    EXPECT_EQ(std::bit_cast<double>(got[i]), a + b);
  }
}

TEST(Session, OptimiserCanBeDisabled) {
  const Harness h("prefix-sums", 16, 4);
  SessionOptions options;
  options.optimize = false;
  std::vector<Word> got;
  const SessionReport report = h.run(Session(options), got);
  EXPECT_FALSE(report.optimised);
  EXPECT_EQ(report.memory_steps_before, report.memory_steps_after);
  EXPECT_EQ(got, h.expected);
}

TEST(Session, ReportSummaryReadable) {
  // A width-multiple lane count keeps the arrangement search on column-wise.
  const Harness h("fft", 64, 32);
  std::vector<Word> got;
  const SessionReport report = h.run(Session(), got);
  const std::string s = report.summary();
  EXPECT_NE(s.find("lanes"), std::string::npos);
  EXPECT_NE(s.find("column-wise"), std::string::npos);
  EXPECT_NE(s.find("simulated"), std::string::npos);
}

TEST(Session, Validation) {
  SessionOptions options;
  options.memory_budget_words = 0;
  EXPECT_THROW(Session{options}, std::logic_error);
  const Harness h("horner", 4, 2);
  std::vector<Word> got;
  EXPECT_THROW(Session().run(h.program, 0, nullptr, nullptr), std::logic_error);
}

}  // namespace

// The peephole optimiser: pass-level unit tests plus differential
// verification over the whole algorithm library and fuzzed programs.
#include <gtest/gtest.h>

#include <vector>

#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "opt/optimizer.hpp"
#include "opt/passes.hpp"
#include "trace/interpreter.hpp"
#include "trace/oblivious_checker.hpp"
#include "trace/recorder.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using trace::Op;
using trace::Step;

// ---------------------------------------------------------------------------
// Pass units
// ---------------------------------------------------------------------------

TEST(ForwardLoads, StoreToLoadBecomesMov) {
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::store(5, 0),
      Step::load(1, 5),  // forwardable
  };
  const auto out = opt::forward_loads(steps, 4);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].kind, trace::StepKind::kAlu);
  EXPECT_EQ(out[2].op, Op::kMov);
  EXPECT_EQ(out[2].dst, 1);
  EXPECT_EQ(out[2].src0, 0);
}

TEST(ForwardLoads, RedundantLoadDropped) {
  std::vector<Step> steps{
      Step::load(0, 3),
      Step::load(0, 3),  // same reg, same addr, nothing between
  };
  EXPECT_EQ(opt::forward_loads(steps, 4).size(), 1u);
}

TEST(ForwardLoads, ClobberBlocksForwarding) {
  std::vector<Step> steps{
      Step::load(0, 3),
      Step::alu(Op::kAddF, 0, 0, 0),  // clobbers r0
      Step::load(0, 3),               // must stay
  };
  EXPECT_EQ(opt::forward_loads(steps, 4).size(), 3u);
}

TEST(ForwardLoads, StoreInvalidatesOtherHolders) {
  std::vector<Step> steps{
      Step::load(0, 3),   // r0 := mem[3]
      Step::store(3, 1),  // mem[3] := r1 (r0 now stale)
      Step::load(2, 3),   // must forward from r1, not r0
  };
  const auto out = opt::forward_loads(steps, 4);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2].op, Op::kMov);
  EXPECT_EQ(out[2].src0, 1);
}

TEST(DeadStores, ScratchStoreRemoved) {
  // Output region = [0, 1); the store at 5 is never read: dead.
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::store(5, 0),
      Step::store(0, 0),
  };
  const auto out = opt::eliminate_dead_stores(steps, 0, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].addr, 0u);
}

TEST(DeadStores, OverwrittenStoreRemoved) {
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::store(0, 0),  // overwritten below without an intervening load
      Step::store(0, 0),
  };
  EXPECT_EQ(opt::eliminate_dead_stores(steps, 0, 1).size(), 2u);
}

TEST(DeadStores, LoadKeepsEarlierStoreAlive) {
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::store(5, 0),
      Step::load(1, 5),   // reads it: live
      Step::store(0, 1),
  };
  EXPECT_EQ(opt::eliminate_dead_stores(steps, 0, 1).size(), 4u);
}

TEST(DedupImmediates, RepeatedConstantDropped) {
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::store(0, 0),
      Step::imm_f64(0, 1.0),  // same constant, register untouched
      Step::store(1, 0),
      Step::imm_f64(0, 2.0),  // different constant: kept
  };
  EXPECT_EQ(opt::dedup_immediates(steps, 4).size(), 4u);
}

TEST(DedupImmediates, LoadInvalidatesConstant) {
  std::vector<Step> steps{
      Step::imm_f64(0, 1.0),
      Step::load(0, 0),
      Step::imm_f64(0, 1.0),  // must be kept
  };
  EXPECT_EQ(opt::dedup_immediates(steps, 4).size(), 3u);
}

TEST(RemoveNops, DropsNopAndSelfMove) {
  std::vector<Step> steps{
      Step::alu(Op::kNop, 0, 0, 0),
      Step::alu(Op::kMov, 1, 1),
      Step::alu(Op::kMov, 1, 2),  // real move: kept
  };
  EXPECT_EQ(opt::remove_nops(steps).size(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end optimiser
// ---------------------------------------------------------------------------

/// Naive recording of a 3-tap moving sum: reloads the neighbours that a
/// hand-tuned version would keep in registers.
trace::Program naive_moving_sum(std::size_t n) {
  trace::Recorder rec(2 * n);
  for (Addr i = 0; i + 2 < n; ++i) {
    auto s = rec.fload(i) + rec.fload(i + 1) + rec.fload(i + 2);
    rec.fstore(n + i, s);
  }
  return std::move(rec).finish("naive-moving-sum", n, n, n);
}

TEST(Optimizer, ShrinksNaiveRecordedCode) {
  const trace::Program naive = naive_moving_sum(64);
  const opt::OptimizeResult r = opt::optimize(naive);
  EXPECT_LT(r.after.memory(), r.before.memory());
  // Each window shares two loads with its predecessor: ~2/3 of loads die.
  EXPECT_GT(r.memory_step_reduction(), 0.3);

  // Semantics preserved on random inputs.
  Rng rng(77);
  for (int trial = 0; trial < 5; ++trial) {
    const auto input = rng.words_f64(64, -10, 10);
    const auto a = trace::interpret(naive, input);
    const auto b = trace::interpret(r.program, input);
    const auto ea = a.output(naive);
    const auto eb = b.output(r.program);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
  }
}

TEST(Optimizer, OptimisedProgramStaysOblivious) {
  const opt::OptimizeResult r = opt::optimize(naive_moving_sum(32));
  EXPECT_TRUE(trace::check_program(r.program, 3).oblivious);
}

class OptimizerDifferential
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(OptimizerDifferential, PreservesOutputsAndNeverGrows) {
  const auto& [name, n] = GetParam();
  const algos::Algorithm& algo = algos::find(name);
  const trace::Program original = algo.make_program(n);
  const opt::OptimizeResult r = opt::optimize(original);
  EXPECT_LE(r.after.total(), r.before.total());
  EXPECT_LE(r.after.memory(), r.before.memory());

  Rng rng(n * 17 + 5);
  for (int trial = 0; trial < 2; ++trial) {
    const auto input = algo.make_input(n, rng);
    const auto a = trace::interpret(original, input);
    const auto b = trace::interpret(r.program, input);
    const auto ea = a.output(original);
    const auto eb = b.output(r.program);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i], eb[i]) << name << " n=" << n << " word " << i;
    }
  }
}

std::vector<std::tuple<std::string, std::size_t>> differential_cases() {
  std::vector<std::tuple<std::string, std::size_t>> cases;
  for (const auto& algo : algos::registry()) {
    const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
    cases.emplace_back(algo.name, n);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Registry, OptimizerDifferential,
                         ::testing::ValuesIn(differential_cases()),
                         [](const auto& param_info) {
                           std::string name = std::get<0>(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Optimizer, ReportsPasses) {
  const opt::OptimizeResult r = opt::optimize(naive_moving_sum(32));
  EXPECT_FALSE(r.reports.empty());
  std::size_t total_removed = 0;
  for (const auto& rep : r.reports) total_removed += rep.removed;
  EXPECT_EQ(total_removed, r.before.total() - r.after.total());
}

TEST(Optimizer, RespectsStepLimit) {
  opt::OptimizeOptions options;
  options.max_steps = 4;
  EXPECT_THROW(opt::optimize(naive_moving_sum(32), options), std::logic_error);
}

}  // namespace

// common/: coroutine generator, RNG, formatting, checks, SIMD ISA
// selection, aligned allocation.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/format.hpp"
#include "common/generator.hpp"
#include "common/rng.hpp"
#include "common/simd_isa.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

Generator<int> count_to(int n) {
  for (int i = 0; i < n; ++i) co_yield i;
}

Generator<int> throwing_gen() {
  co_yield 1;
  throw std::runtime_error("boom");
}

TEST(Generator, YieldsInOrder) {
  auto gen = count_to(5);
  std::vector<int> got;
  int v;
  while (gen.next(v)) got.push_back(v);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(gen.next(v));  // exhausted stays exhausted
}

TEST(Generator, RangeForInterface) {
  auto gen = count_to(4);
  int sum = 0;
  for (int v : gen) sum += v;
  EXPECT_EQ(sum, 6);
}

TEST(Generator, EmptyStream) {
  auto gen = count_to(0);
  int v;
  EXPECT_FALSE(gen.next(v));
}

TEST(Generator, PropagatesExceptions) {
  auto gen = throwing_gen();
  int v;
  EXPECT_TRUE(gen.next(v));
  EXPECT_EQ(v, 1);
  EXPECT_THROW(gen.next(v), std::runtime_error);
}

TEST(Generator, MoveTransfersOwnership) {
  auto gen = count_to(3);
  int v;
  ASSERT_TRUE(gen.next(v));
  Generator<int> other = std::move(gen);
  ASSERT_TRUE(other.next(v));
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(gen.valid());
}

TEST(Generator, DefaultConstructedIsEmpty) {
  Generator<int> gen;
  int v;
  EXPECT_FALSE(gen.next(v));
  EXPECT_FALSE(gen.valid());
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(2);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.next_below(5)];
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(Rng, DoublesInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, WordVectors) {
  Rng rng(4);
  const auto f = rng.words_f64(100, 0.0, 1.0);
  ASSERT_EQ(f.size(), 100u);
  for (Word w : f) {
    const double v = trace::as_f64(w);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  const auto u = rng.words_u64(100, 10);
  for (Word w : u) EXPECT_LT(w, 10u);
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

TEST(Format, Counts) {
  EXPECT_EQ(format_count(64), "64");
  EXPECT_EQ(format_count(1024), "1K");
  EXPECT_EQ(format_count(32768), "32K");
  EXPECT_EQ(format_count(4194304), "4M");
  EXPECT_EQ(format_count(1073741824), "1G");
  EXPECT_EQ(format_count(1000), "1000");  // not a binary multiple
  EXPECT_EQ(format_count(1536), "1536");  // 1.5K stays exact
}

TEST(Format, Seconds) {
  EXPECT_EQ(format_seconds(2.5), "2.500 s");
  EXPECT_EQ(format_seconds(0.0679), "67.900 ms");
  EXPECT_EQ(format_seconds(37e-6), "37.000 us");
  EXPECT_EQ(format_seconds(8.09e-9), "8.090 ns");
}

TEST(Format, Units) {
  EXPECT_EQ(format_units(12.0), "12 cycles");
  EXPECT_EQ(format_units(12345.0), "12.345 Kcycles");
  EXPECT_EQ(format_units(3.5e6), "3.500 Mcycles");
  EXPECT_EQ(format_units(2e9), "2.000 Gcycles");
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

TEST(Check, ThrowsWithContext) {
  try {
    OBX_CHECK(false, "the message");
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("common_test"), std::string::npos);
  }
}

TEST(Check, PassesSilently) { OBX_CHECK(true, "never seen"); }

// ---------------------------------------------------------------------------
// SIMD ISA selection
// ---------------------------------------------------------------------------

TEST(SimdIsa, WidthsAndNames) {
  EXPECT_EQ(simd_width_words(SimdIsa::kScalar), 1u);
  EXPECT_EQ(simd_width_words(SimdIsa::kSse2), 2u);
  EXPECT_EQ(simd_width_words(SimdIsa::kNeon), 2u);
  EXPECT_EQ(simd_width_words(SimdIsa::kAvx2), 4u);
  EXPECT_EQ(simd_width_words(SimdIsa::kAvx512), 8u);
  for (const SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse2, SimdIsa::kNeon,
                            SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    EXPECT_EQ(parse_simd_isa(to_string(isa)), isa);
  }
  EXPECT_FALSE(parse_simd_isa("auto").has_value());
  EXPECT_FALSE(parse_simd_isa("").has_value());
  EXPECT_FALSE(parse_simd_isa("avx1024").has_value());
}

TEST(SimdIsa, DetectionIsSupportedAndStable) {
  EXPECT_TRUE(simd_isa_supported(SimdIsa::kScalar));
  const SimdIsa detected = detect_simd_isa();
  EXPECT_TRUE(simd_isa_supported(detected));
  EXPECT_EQ(detect_simd_isa(), detected);
  // The latched active tier is one of the supported tiers (OBX_SIMD
  // overrides clamp to supported ones).
  EXPECT_TRUE(simd_isa_supported(active_simd_isa()));
  EXPECT_EQ(active_simd_isa(), active_simd_isa());
}

// ---------------------------------------------------------------------------
// Aligned allocation
// ---------------------------------------------------------------------------

TEST(Aligned, VectorStorageIs64ByteAligned) {
  for (const std::size_t n : {1u, 3u, 17u, 1000u}) {
    aligned_vector<Word> v(n, Word{42});
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kSimdAlignBytes, 0u)
        << "n=" << n;
  }
}

TEST(Aligned, ComparesWithPlainVector) {
  const aligned_vector<Word> a{1, 2, 3};
  const std::vector<Word> b{1, 2, 3};
  const std::vector<Word> c{1, 2, 4};
  const std::vector<Word> d{1, 2};
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(b == a);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
  EXPECT_TRUE(a == aligned_vector<Word>(b.begin(), b.end()));
}

TEST(Aligned, HugePageHintIsBestEffort) {
  // The hint must be harmless whatever the platform, the OBX_THP setting, or
  // the allocation size: above-threshold allocations still work and stay
  // 64-byte aligned, and hinting an arbitrary buffer directly never throws.
  aligned_vector<Word> big((kHugePageHintBytes / sizeof(Word)) + 7, Word{1});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % kSimdAlignBytes, 0u);
  EXPECT_EQ(big.back(), Word{1});
  hint_huge_pages(big.data(), big.size() * sizeof(Word));
  hint_huge_pages(big.data(), 16);  // below threshold: no-op
  // Latched toggle is consistent across calls.
  EXPECT_EQ(huge_page_hint_enabled(), huge_page_hint_enabled());
}

}  // namespace

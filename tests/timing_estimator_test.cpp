// The timing fast path against the paper's closed-form bounds.
#include <gtest/gtest.h>

#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "bulk/timing_estimator.hpp"
#include "umm/cost_model.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

TEST(TimingEstimator, PrefixSumsMatchesLemma1Exactly) {
  // For n >= w, p a multiple of w, the simulated time must equal Lemma 1's
  // exact per-step account: 2n(p + l - 1) row-wise, 2n(p/w + l - 1) column-
  // wise (aligned: p multiple of w makes every column-wise step aligned).
  const std::size_t n = 64;
  const std::size_t p = 256;
  const umm::MachineConfig cfg{.width = 32, .latency = 100};
  const trace::Program program = algos::prefix_sums_program(n);

  const TimingResult row =
      TimingEstimator(umm::Model::kUmm, cfg, Layout::row_wise(p, n)).run(program);
  const TimingResult col =
      TimingEstimator(umm::Model::kUmm, cfg, Layout::column_wise(p, n)).run(program);

  EXPECT_EQ(row.time_units, umm::lemma1_row_wise(n, p, cfg));
  EXPECT_EQ(col.time_units, umm::lemma1_column_wise(n, p, cfg));
}

TEST(TimingEstimator, BoundedByTheorem3) {
  const std::size_t n = 32;
  const umm::MachineConfig cfg{.width = 32, .latency = 50};
  const trace::Program program = algos::prefix_sums_program(n);
  const std::uint64_t t = algos::prefix_sums_memory_steps(n);

  for (std::size_t p : {32u, 64u, 1024u, 8192u}) {
    const TimingResult col =
        TimingEstimator(umm::Model::kUmm, cfg, Layout::column_wise(p, n)).run(program);
    const TimeUnits lower = umm::theorem3_lower_bound(t, p, cfg);
    EXPECT_GE(col.time_units, lower) << "p=" << p;
    EXPECT_LE(col.time_units, 3 * lower) << "p=" << p << " (not time-optimal?)";
  }
}

TEST(TimingEstimator, OptMatchesTheorem2Shape) {
  // OPT's accesses touch two different strides' worth of rows, but every
  // step still costs (p + l - 1) row-wise when the canonical array is wide
  // enough (2n² >= w), so Theorem 2 holds exactly row-wise.
  const std::size_t n = 8;
  const std::size_t p = 64;
  const umm::MachineConfig cfg{.width = 16, .latency = 10};
  const trace::Program program = algos::opt_program(n);
  const std::uint64_t t = algos::opt_memory_steps(n);

  const TimingResult row =
      TimingEstimator(umm::Model::kUmm, cfg,
                      Layout::row_wise(p, program.memory_words))
          .run(program);
  EXPECT_EQ(row.time_units, umm::theorem2_row_wise(t, p, cfg));

  const TimingResult col =
      TimingEstimator(umm::Model::kUmm, cfg,
                      Layout::column_wise(p, program.memory_words))
          .run(program);
  EXPECT_EQ(col.time_units, umm::theorem2_column_wise(t, p, cfg));
}

TEST(TimingEstimator, BlockedLayoutRequiresDivisibleWidth) {
  const trace::Program program = algos::prefix_sums_program(16);
  const umm::MachineConfig cfg{.width = 32, .latency = 1};
  EXPECT_THROW(
      TimingEstimator(umm::Model::kUmm, cfg, Layout::blocked(64, 16, 16)),
      std::logic_error);
  EXPECT_NO_THROW(
      TimingEstimator(umm::Model::kUmm, cfg, Layout::blocked(64, 16, 32)));
}

TEST(TimingEstimator, BlockedWithWidthBlockIsCoalesced) {
  // block = w: every warp sits inside one block with stride 1 → column-wise
  // cost.
  const std::size_t n = 16;
  const std::size_t p = 128;
  const umm::MachineConfig cfg{.width = 32, .latency = 7};
  const trace::Program program = algos::prefix_sums_program(n);
  const TimingResult blocked =
      TimingEstimator(umm::Model::kUmm, cfg, Layout::blocked(p, n, 32)).run(program);
  const TimingResult col =
      TimingEstimator(umm::Model::kUmm, cfg, Layout::column_wise(p, n)).run(program);
  EXPECT_EQ(blocked.time_units, col.time_units);
}

TEST(TimingEstimator, MonotoneInLatencyAndLanes) {
  const std::size_t n = 16;
  const trace::Program program = algos::prefix_sums_program(n);
  TimeUnits prev = 0;
  for (std::uint32_t l : {1u, 2u, 8u, 64u, 512u}) {
    const umm::MachineConfig cfg{.width = 32, .latency = l};
    const TimingResult r =
        TimingEstimator(umm::Model::kUmm, cfg, Layout::column_wise(64, n)).run(program);
    EXPECT_GT(r.time_units, prev);
    prev = r.time_units;
  }
  prev = 0;
  for (std::size_t p : {32u, 64u, 128u, 4096u}) {
    const umm::MachineConfig cfg{.width = 32, .latency = 4};
    const TimingResult r =
        TimingEstimator(umm::Model::kUmm, cfg, Layout::column_wise(p, n)).run(program);
    EXPECT_GT(r.time_units, prev);
    prev = r.time_units;
  }
}

TEST(TimingEstimator, StepTimeExposed) {
  const umm::MachineConfig cfg{.width = 4, .latency = 5};
  const TimingEstimator est(umm::Model::kUmm, cfg, Layout::column_wise(16, 8));
  // Aligned step: 16/4 = 4 stages + 5 - 1.
  EXPECT_EQ(est.step_time(0), 8u);
}

}  // namespace

// AccessTimer: step charging and statistics.
#include <gtest/gtest.h>

#include <vector>

#include "umm/timers.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

MachineConfig cfg4() { return MachineConfig{.width = 4, .latency = 5}; }

TEST(Timer, ChargesWarpBatches) {
  AccessTimer timer(Model::kUmm, cfg4());
  // Two warps: {0,1,2,3} one group, {8,100,200,300} four groups → 5 stages.
  const std::vector<Addr> addrs{0, 1, 2, 3, 8, 100, 200, 300};
  EXPECT_EQ(timer.charge_step(addrs), 5u + 5 - 1);
  EXPECT_EQ(timer.stats().access_steps, 1u);
  EXPECT_EQ(timer.stats().warps_dispatched, 2u);
  EXPECT_EQ(timer.stats().stages_total, 5u);
}

TEST(Timer, SkipsInactiveWarps) {
  AccessTimer timer(Model::kUmm, cfg4());
  std::vector<Addr> addrs(8, kInvalidAddr);
  addrs[5] = 42;  // only the second warp is active
  EXPECT_EQ(timer.charge_step(addrs), 1u + 5 - 1);
  EXPECT_EQ(timer.stats().warps_dispatched, 1u);
}

TEST(Timer, PrecomputedPathMatchesDirect) {
  AccessTimer direct(Model::kUmm, cfg4());
  AccessTimer pre(Model::kUmm, cfg4());
  const std::vector<Addr> addrs{0, 1, 2, 3};
  const TimeUnits t1 = direct.charge_step(addrs);
  const TimeUnits t2 = pre.charge_precomputed(1, 1);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(direct.time_units(), pre.time_units());
}

TEST(Timer, ComputeStepsRespectConfig) {
  AccessTimer off(Model::kUmm, cfg4());
  EXPECT_EQ(off.charge_compute(), 0u);
  EXPECT_EQ(off.stats().compute_steps, 1u);

  MachineConfig cfg = cfg4();
  cfg.count_compute = true;
  AccessTimer on(Model::kUmm, cfg);
  EXPECT_EQ(on.charge_compute(), 1u);
  EXPECT_EQ(on.time_units(), 1u);
}

TEST(Timer, PartialTailWarp) {
  AccessTimer timer(Model::kUmm, cfg4());
  // 6 lanes at w=4: one full warp + 2-lane tail.
  const std::vector<Addr> addrs{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(timer.charge_step(addrs), (1 + 1) + 5 - 1);
  EXPECT_EQ(timer.stats().warps_dispatched, 2u);
}

TEST(Timer, DmmModelUsesBankConflicts) {
  AccessTimer timer(Model::kDmm, cfg4());
  const std::vector<Addr> addrs{0, 4, 8, 12};  // all bank 0: 4 stages
  EXPECT_EQ(timer.charge_step(addrs), 4u + 5 - 1);
}

}  // namespace

// Lockstep host executor vs the scalar interpreter: bit-identical results on
// every arrangement, every algorithm, and with multi-threaded chunking.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "algos/algorithm.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"

namespace {

using namespace obx;
using namespace obx::bulk;

std::vector<Word> flat_inputs(const algos::Algorithm& algo, std::size_t n, std::size_t p,
                              Rng& rng) {
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

using Case = std::tuple<std::string, Arrangement>;

class HostExecutorEquivalence : public ::testing::TestWithParam<Case> {};

TEST_P(HostExecutorEquivalence, MatchesInterpreterPerLane) {
  const auto& [name, arrangement] = GetParam();
  const algos::Algorithm& algo = algos::find(name);
  // Use a small-to-moderate size so the sweep stays fast.
  const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
  const std::size_t p = 13;  // deliberately not a multiple of any warp width
  const trace::Program program = algo.make_program(n);

  Rng rng(1234);
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);

  Layout layout = arrangement == Arrangement::kBlocked
                      ? Layout::blocked(p, program.memory_words, 1)
                      : make_layout(program, p, arrangement);
  const HostBulkExecutor exec(layout);
  const HostRunResult run = exec.run(program, inputs);
  const std::vector<Word> outputs = exec.gather_outputs(program, run.memory);

  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const Word> input(inputs.data() + j * program.input_words,
                                      program.input_words);
    const trace::InterpreterResult ref = trace::interpret(program, input);
    const auto expected = ref.output(program);
    for (std::size_t i = 0; i < program.output_words; ++i) {
      ASSERT_EQ(outputs[j * program.output_words + i], expected[i])
          << name << " lane " << j << " word " << i;
    }
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto& algo : algos::registry()) {
    cases.emplace_back(algo.name, Arrangement::kRowWise);
    cases.emplace_back(algo.name, Arrangement::kColumnWise);
    cases.emplace_back(algo.name, Arrangement::kBlocked);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithmsAllArrangements, HostExecutorEquivalence,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<Case>& param_info) {
                           std::string name = std::get<0>(param_info.param) + "_" +
                                              to_string(std::get<1>(param_info.param));
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(HostExecutor, MultiThreadedMatchesSingle) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 64;
  const std::size_t p = 32;
  const trace::Program program = algo.make_program(n);
  Rng rng(7);
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);

  const Layout layout = Layout::column_wise(p, program.memory_words);
  const HostBulkExecutor single(layout, HostBulkExecutor::Options{.workers = 1});
  const HostBulkExecutor multi(layout, HostBulkExecutor::Options{.workers = 4});
  const auto a = single.run(program, inputs);
  const auto b = multi.run(program, inputs);
  EXPECT_EQ(a.memory, b.memory);
}

TEST(HostExecutor, BlockedChunksAlignToBlocks) {
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::size_t n = 16;
  const std::size_t p = 24;
  const trace::Program program = algo.make_program(n);
  Rng rng(8);
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);

  const Layout layout = Layout::blocked(p, program.memory_words, 8);
  const HostBulkExecutor multi(layout, HostBulkExecutor::Options{.workers = 5});
  const HostBulkExecutor single(layout, HostBulkExecutor::Options{.workers = 1});
  EXPECT_EQ(multi.run(program, inputs).memory, single.run(program, inputs).memory);
}

TEST(HostExecutor, RejectsMismatchedSizes) {
  const trace::Program program = algos::find("prefix-sums").make_program(8);
  const Layout wrong = Layout::column_wise(4, 9);
  EXPECT_THROW(HostBulkExecutor(wrong).run(program, std::vector<Word>(32)),
               std::logic_error);
  const Layout right = Layout::column_wise(4, 8);
  EXPECT_THROW(HostBulkExecutor(right).run(program, std::vector<Word>(31)),
               std::logic_error);
}

TEST(HostExecutor, ReportsPerInputStepCounts) {
  const trace::Program program = algos::find("prefix-sums").make_program(10);
  const std::size_t p = 4;
  Rng rng(9);
  const algos::Algorithm& algo = algos::find("prefix-sums");
  const std::vector<Word> inputs = flat_inputs(algo, 10, p, rng);
  const HostBulkExecutor exec(Layout::column_wise(p, program.memory_words));
  const HostRunResult run = exec.run(program, inputs);
  EXPECT_EQ(run.counts.memory(), 20u);
  EXPECT_GE(run.seconds, 0.0);
}

TEST(RunBulk, ConvenienceApiMatchesArrangements) {
  const algos::Algorithm& algo = algos::find("bitonic-sort");
  const std::size_t n = 64;
  const std::size_t p = 6;
  const trace::Program program = algo.make_program(n);
  Rng rng(10);
  const std::vector<Word> inputs = flat_inputs(algo, n, p, rng);

  const BulkOutputs row = run_bulk(program, inputs, p, Arrangement::kRowWise);
  const BulkOutputs col = run_bulk(program, inputs, p, Arrangement::kColumnWise);
  ASSERT_EQ(row.count(), p);
  ASSERT_EQ(col.count(), p);
  EXPECT_EQ(row.flat.size(), col.flat.size());
  for (std::size_t j = 0; j < p; ++j) {
    const auto a = row.output(j);
    const auto b = col.output(j);
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace

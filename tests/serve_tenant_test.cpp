// Multi-tenancy at the serve layer: token buckets, per-tenant quotas and
// counters, priority-aware overflow, and hostile tenant names in the
// Prometheus rendering.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "serve/admission_queue.hpp"
#include "serve/metrics.hpp"
#include "serve/service.hpp"
#include "serve/tenant.hpp"

namespace {

using namespace obx;
using namespace obx::serve;
using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Token bucket (clock-injected, deterministic)
// ---------------------------------------------------------------------------

TEST(TokenBucket, BurstThenSustainedRate) {
  const Clock::time_point t0 = Clock::now();
  TokenBucket bucket(TenantQuota{/*rate_hz=*/10, /*burst=*/3}, t0);

  // Burst capacity: exactly 3 immediate admissions.
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_FALSE(bucket.try_acquire(t0));

  // 100 ms at 10 Hz refills exactly one token.
  EXPECT_TRUE(bucket.try_acquire(t0 + 100ms));
  EXPECT_FALSE(bucket.try_acquire(t0 + 100ms));

  // Refill caps at burst: a long idle spell is still only 3 tokens.
  EXPECT_NEAR(bucket.tokens(t0 + 1h), 3.0, 1e-9);
}

TEST(TokenBucket, UnlimitedNeverThrottles) {
  const Clock::time_point t0 = Clock::now();
  TokenBucket bucket(TenantQuota{}, t0);  // rate 0 = unlimited
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(bucket.try_acquire(t0));
}

TEST(TokenBucket, RefundReturnsTheToken) {
  const Clock::time_point t0 = Clock::now();
  TokenBucket bucket(TenantQuota{/*rate_hz=*/1, /*burst=*/1}, t0);
  EXPECT_TRUE(bucket.try_acquire(t0));
  EXPECT_FALSE(bucket.try_acquire(t0));
  bucket.refund();
  EXPECT_TRUE(bucket.try_acquire(t0));
}

TEST(TenantTable, DefaultQuotaAppliesToUnknownTenants) {
  const Clock::time_point t0 = Clock::now();
  TenantTable table(TenantQuota{/*rate_hz=*/5, /*burst=*/1});
  EXPECT_TRUE(table.admit("anyone", t0));
  EXPECT_FALSE(table.admit("anyone", t0));   // bucket of burst 1 is empty
  EXPECT_TRUE(table.admit("someone-else", t0));  // separate bucket

  // An explicit quota overrides the default.
  table.set_quota("vip", TenantQuota{/*rate_hz=*/1000, /*burst=*/100}, t0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(table.admit("vip", t0));
  EXPECT_FALSE(table.admit("vip", t0));
}

TEST(TenantTable, NoDefaultMeansUnlimited) {
  const Clock::time_point t0 = Clock::now();
  TenantTable table;
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(table.admit("free", t0));
  EXPECT_FALSE(table.quota_for("free").has_value());
}

// ---------------------------------------------------------------------------
// Prometheus label escaping (hostile tenant names)
// ---------------------------------------------------------------------------

TEST(PrometheusEscape, EscapesExpositionMetaCharacters) {
  EXPECT_EQ(escape_label_value("plain-tenant_1.2"), "plain-tenant_1.2");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");
  // Other control bytes are flattened, never emitted raw.
  EXPECT_EQ(escape_label_value(std::string("a\x01\x7f\tb")), "a___b");
}

TEST(PrometheusEscape, HostileTenantNameCannotCorruptScrape) {
  Metrics metrics;
  const std::string hostile =
      "evil\"} 1\nobx_serve_tenant_completed_total{tenant=\"fake";
  metrics.tenant(hostile).submitted.fetch_add(7);
  metrics.tenant("normal").submitted.fetch_add(3);

  const std::string text = render_prometheus(metrics.snapshot());
  // The raw injection must not appear: no unescaped quote-brace sequence,
  // and every line is either a comment or name{...} value / name value.
  EXPECT_EQ(text.find("evil\"}"), std::string::npos);
  EXPECT_NE(text.find("tenant=\"evil\\\"} 1\\nobx_serve"), std::string::npos);
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "unparseable line: " << line;
    // The value after the last space must be numeric.
    EXPECT_NE(line.find_first_of("0123456789", space), std::string::npos)
        << "line without numeric value: " << line;
  }
}

TEST(PrometheusEscape, TenantsRenderSortedAndComplete) {
  Metrics metrics;
  metrics.tenant("beta").completed.fetch_add(2);
  metrics.tenant("alpha").rejected.fetch_add(1);
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_EQ(snap.tenants.size(), 2u);
  EXPECT_EQ(snap.tenants[0].tenant, "alpha");
  EXPECT_EQ(snap.tenants[1].tenant, "beta");
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("obx_serve_tenant_completed_total{tenant=\"beta\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obx_serve_tenant_rejected_total{tenant=\"alpha\"} 1"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Tenant cardinality caps (ids are client-supplied and unauthenticated, so
// an id-minting storm must not grow server state without bound)
// ---------------------------------------------------------------------------

TEST(TenantCardinality, MetricsCapsTrackedTenantsIntoOverflowRow) {
  Metrics metrics;
  for (std::size_t i = 0; i < Metrics::kMaxTenants + 5; ++i) {
    metrics.tenant("t-" + std::to_string(i)).submitted.fetch_add(1);
  }
  const MetricsSnapshot snap = metrics.snapshot();
  ASSERT_EQ(snap.tenants.size(), Metrics::kMaxTenants + 1);
  const TenantSnapshot& spill = snap.tenants.back();
  EXPECT_EQ(spill.tenant, Metrics::kOverflowTenant);
  EXPECT_EQ(spill.submitted, 5u);

  // Every later unseen id keeps landing in the same shared row.
  metrics.tenant("yet-another").rejected.fetch_add(2);
  EXPECT_EQ(metrics.snapshot().tenants.size(), Metrics::kMaxTenants + 1);
  EXPECT_EQ(metrics.snapshot().tenants.back().rejected, 2u);

  // Already-tracked tenants still resolve to their own row.
  metrics.tenant("t-0").submitted.fetch_add(1);
  EXPECT_EQ(metrics.snapshot().tenants.front().submitted, 2u);
}

TEST(TenantCardinality, TableCapsDefaultQuotaBuckets) {
  const Clock::time_point t0 = Clock::now();
  TenantTable table(TenantQuota{/*rate_hz=*/1000, /*burst=*/2});
  for (std::size_t i = 0; i < TenantTable::kMaxBuckets; ++i) {
    ASSERT_TRUE(table.admit("t-" + std::to_string(i), t0));
  }
  // Unseen ids past the cap draw from one shared default bucket, so a storm
  // of fresh ids is throttled collectively (two tokens across all of them).
  EXPECT_TRUE(table.admit("spill-a", t0));
  EXPECT_TRUE(table.admit("spill-b", t0));
  EXPECT_FALSE(table.admit("spill-c", t0));
  // A rolled-back past-the-cap admission refunds the shared bucket.
  table.refund("spill-a");
  EXPECT_TRUE(table.admit("spill-d", t0));
  EXPECT_FALSE(table.admit("spill-e", t0));
  // Tenants that got a private bucket before the cap are unaffected.
  EXPECT_TRUE(table.admit("t-0", t0));
}

// ---------------------------------------------------------------------------
// Priority-aware admission queue
// ---------------------------------------------------------------------------

Job make_job(std::uint64_t id, Priority priority) {
  Job job;
  job.id = id;
  job.program_id = "p";
  job.priority = priority;
  job.enqueue_time = Clock::now();
  return job;
}

TEST(PriorityShed, VictimIsOldestOfLeastImportantClass) {
  AdmissionQueue queue(2, OverflowPolicy::kShedOldest);
  ASSERT_EQ(queue.push(make_job(1, Priority::kHigh), OverflowPolicy::kShedOldest,
                       nullptr),
            AdmissionQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(make_job(2, Priority::kLow), OverflowPolicy::kShedOldest,
                       nullptr),
            AdmissionQueue::PushResult::kAccepted);

  // Full queue, normal-priority newcomer: the low job is the victim even
  // though the high one is older.
  std::optional<Job> shed;
  ASSERT_EQ(queue.push(make_job(3, Priority::kNormal),
                       OverflowPolicy::kShedOldest, &shed),
            AdmissionQueue::PushResult::kAccepted);
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->id, 2u);
  EXPECT_EQ(shed->priority, Priority::kLow);
}

TEST(PriorityShed, NewcomerNeverEvictsHigherPriorityWork) {
  AdmissionQueue queue(2, OverflowPolicy::kShedOldest);
  ASSERT_EQ(queue.push(make_job(1, Priority::kHigh),
                       OverflowPolicy::kShedOldest, nullptr),
            AdmissionQueue::PushResult::kAccepted);
  ASSERT_EQ(queue.push(make_job(2, Priority::kNormal),
                       OverflowPolicy::kShedOldest, nullptr),
            AdmissionQueue::PushResult::kAccepted);

  // A low-priority newcomer outranks nothing in the queue: rejected, queue
  // untouched.
  std::optional<Job> shed;
  Job low = make_job(3, Priority::kLow);
  ASSERT_EQ(queue.push(std::move(low), OverflowPolicy::kShedOldest, &shed),
            AdmissionQueue::PushResult::kRejected);
  EXPECT_FALSE(shed.has_value());
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(PriorityShed, NonBlockingPushReportsWouldBlock) {
  AdmissionQueue queue(1, OverflowPolicy::kBlock);
  ASSERT_EQ(queue.push(make_job(1, Priority::kNormal), OverflowPolicy::kBlock,
                       nullptr, /*allow_block=*/false),
            AdmissionQueue::PushResult::kAccepted);
  Job second = make_job(2, Priority::kNormal);
  EXPECT_EQ(queue.push(std::move(second), OverflowPolicy::kBlock, nullptr,
                       /*allow_block=*/false),
            AdmissionQueue::PushResult::kWouldBlock);
  EXPECT_EQ(queue.depth(), 1u);
}

// ---------------------------------------------------------------------------
// Service-level tenancy: quotas, per-tenant counters, overflow attribution
// ---------------------------------------------------------------------------

trace::Program tiny_program(std::size_t n) {
  return algos::find("prefix-sums").make_program(n);
}

TEST(ServiceTenancy, QuotaRejectionsAreCountedPerTenant) {
  ServiceOptions options;
  options.queue_capacity = 64;
  options.batcher.max_batch_lanes = 8;
  options.batcher.max_batch_delay = 100us;
  // 1 token burst, negligible refill: second submission must throttle.
  options.tenant_quotas["starved"] = TenantQuota{/*rate_hz=*/0.001, /*burst=*/1};
  BulkService service(options);
  service.register_program("p", tiny_program(8));

  Rng rng(1);
  const auto input = [&] { return algos::find("prefix-sums").make_input(8, rng); };

  SubmitOptions starved;
  starved.tenant = "starved";
  auto first = service.submit("p", input(), starved);
  auto second = service.submit("p", input(), starved);
  SubmitOptions fine;
  fine.tenant = "unquotad";
  auto third = service.submit("p", input(), fine);

  EXPECT_EQ(first.get().status, JobStatus::kCompleted);
  const JobResult throttled = second.get();
  EXPECT_EQ(throttled.status, JobStatus::kRejected);
  EXPECT_FALSE(throttled.error.empty());
  EXPECT_EQ(third.get().status, JobStatus::kCompleted);
  service.stop();

  const MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.throttled, 1u);
  bool found = false;
  for (const TenantSnapshot& t : snap.tenants) {
    if (t.tenant != "starved") continue;
    found = true;
    EXPECT_EQ(t.submitted, 2u);
    EXPECT_EQ(t.completed, 1u);
    EXPECT_EQ(t.rejected, 1u);
    EXPECT_EQ(t.throttled, 1u);
  }
  EXPECT_TRUE(found) << "starved tenant missing from snapshot";
}

TEST(ServiceTenancy, OverflowPolicyAttributionPerTenant) {
  ServiceOptions options;
  options.queue_capacity = 1;
  options.policy = OverflowPolicy::kReject;
  // Huge batch delay so the queue stays occupied while we overflow it.
  options.batcher.max_batch_lanes = 64;
  options.batcher.max_batch_delay = 50ms;
  options.executors = 1;
  BulkService service(options);
  service.register_program("p", tiny_program(8));

  Rng rng(2);
  const auto input = [&] { return algos::find("prefix-sums").make_input(8, rng); };

  SubmitOptions a;
  a.tenant = "tenant-a";
  SubmitOptions b;
  b.tenant = "tenant-b";
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.submit("p", input(), i % 2 ? a : b));
  }
  std::size_t rejected_total = 0;
  for (auto& f : futures) {
    if (f.get().status == JobStatus::kRejected) ++rejected_total;
  }
  service.stop();

  const MetricsSnapshot snap = service.snapshot();
  std::uint64_t attributed = 0;
  for (const TenantSnapshot& t : snap.tenants) attributed += t.overflow_reject;
  EXPECT_EQ(attributed, rejected_total)
      << "every queue rejection must be attributed to the tenant that hit it";
}

TEST(ServiceTenancy, PriorityPolicyOverridesMapPerClass) {
  ServiceOptions options;
  options.queue_capacity = 128;
  options.policy = OverflowPolicy::kBlock;
  options.priority_policies[static_cast<std::size_t>(Priority::kLow)] =
      OverflowPolicy::kReject;
  EXPECT_EQ(options.effective_policy(Priority::kHigh), OverflowPolicy::kBlock);
  EXPECT_EQ(options.effective_policy(Priority::kNormal), OverflowPolicy::kBlock);
  EXPECT_EQ(options.effective_policy(Priority::kLow), OverflowPolicy::kReject);
}

TEST(ServiceTenancy, TrySubmitWouldBlockChargesNothing) {
  // A capacity-1 queue is only ever *momentarily* full (the batcher pops
  // eagerly), so a single-shot kWouldBlock expectation is a race.  Instead:
  // spam an unlimited filler tenant to keep catching the queue full, and
  // each time it is, probe the quota'd tenant.  Token arithmetic at the end
  // proves the probe's kWouldBlock results consumed nothing.
  ServiceOptions options;
  options.queue_capacity = 1;
  options.policy = OverflowPolicy::kBlock;
  options.batcher.max_batch_lanes = 64;
  options.batcher.max_batch_delay = 1ms;
  options.executors = 1;
  constexpr double kBurst = 64;
  options.tenant_quotas["t"] = TenantQuota{/*rate_hz=*/0.001, kBurst};
  BulkService service(options);
  service.register_program("p", tiny_program(8));

  Rng rng(3);
  const auto input = [&] { return algos::find("prefix-sums").make_input(8, rng); };
  SubmitOptions filler;
  filler.tenant = "filler";
  SubmitOptions probe;
  probe.tenant = "t";

  const auto discard = [](JobResult&&) {};
  std::size_t probe_resolved = 0;
  std::size_t probe_would_block = 0;
  for (std::size_t attempt = 0;
       attempt < 500000 && probe_would_block == 0 &&
       probe_resolved + 1 < static_cast<std::size_t>(kBurst);
       ++attempt) {
    if (service.try_submit("p", input(), filler, discard) !=
        BulkService::TrySubmit::kWouldBlock) {
      continue;
    }
    // The queue was full a moment ago; probing now usually blocks too.  (A
    // quota throttle would come back kResolved with a kRejected result —
    // the snap.throttled == 0 assert below rules those out.)
    if (service.try_submit("p", input(), probe, discard) ==
        BulkService::TrySubmit::kWouldBlock) {
      ++probe_would_block;
    } else {
      ++probe_resolved;  // the batcher won the race; a token is spent
    }
  }
  ASSERT_GT(probe_would_block, 0u) << "never caught the queue full";

  // If kWouldBlock refunded, exactly probe_resolved tokens are spent and
  // kBurst - probe_resolved remain; drain these one at a time (queue never
  // full) — a single throttle here means a would-block ate a token.
  for (std::size_t i = probe_resolved; i < static_cast<std::size_t>(kBurst);
       ++i) {
    std::promise<JobResult> done;
    auto future = done.get_future();
    // The filler backlog may still hold the queue full for a moment; a
    // kWouldBlock here charges nothing (that is the property under test),
    // so retrying cannot skew the token arithmetic.
    while (service.try_submit("p", input(), probe, [&](JobResult&& r) {
             done.set_value(std::move(r));
           }) == BulkService::TrySubmit::kWouldBlock) {
      std::this_thread::yield();
    }
    EXPECT_EQ(future.get().status, JobStatus::kCompleted)
        << "token " << i << " missing: kWouldBlock must not charge the quota";
  }
  service.stop();

  const MetricsSnapshot snap = service.snapshot();
  EXPECT_EQ(snap.throttled, 0u) << "kWouldBlock must not count as throttled";
}

}  // namespace

// The l-stage access pipeline, including the paper's Fig. 4 worked example.
#include <gtest/gtest.h>

#include <vector>

#include "umm/machine_config.hpp"
#include "umm/pipeline.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

TEST(Pipeline, PaperFigure4Example) {
  // W(0) occupies 3 stages (3 address groups), W(1) occupies 1; with l = 5
  // the batch completes at 3 + 1 + 5 - 1 = 8 time units.
  const std::vector<std::uint64_t> stages{3, 1};
  EXPECT_EQ(batch_completion_time(stages, 5), 8u);
}

TEST(Pipeline, EmptyBatchIsFree) {
  EXPECT_EQ(batch_completion_time({}, 5), 0u);
  const std::vector<std::uint64_t> zeros{0, 0, 0};
  EXPECT_EQ(batch_completion_time(zeros, 5), 0u);  // undispatched warps are free
}

TEST(Pipeline, SingleCoalescedWarpCostsLatency) {
  // One warp, one address group: completes in exactly l time units.
  const std::vector<std::uint64_t> stages{1};
  EXPECT_EQ(batch_completion_time(stages, 5), 5u);
  EXPECT_EQ(batch_completion_time(stages, 1), 1u);
}

TEST(Pipeline, LatencyMustBePositive) {
  const std::vector<std::uint64_t> stages{1};
  EXPECT_THROW(batch_completion_time(stages, 0), std::logic_error);
}

TEST(Pipeline, StatefulClockAccumulates) {
  AccessPipeline pipe(MachineConfig{.width = 4, .latency = 5});
  EXPECT_EQ(pipe.now(), 0u);
  const std::vector<std::uint64_t> batch1{3, 1};
  EXPECT_EQ(pipe.submit_batch(batch1), 8u);
  EXPECT_EQ(pipe.now(), 8u);
  const std::vector<std::uint64_t> batch2{1};
  EXPECT_EQ(pipe.submit_batch(batch2), 5u);
  EXPECT_EQ(pipe.now(), 13u);
  EXPECT_EQ(pipe.batches_submitted(), 2u);
  EXPECT_EQ(pipe.stages_total(), 5u);
}

TEST(Pipeline, EmptyBatchDoesNotAdvanceClock) {
  AccessPipeline pipe(MachineConfig{.width = 4, .latency = 5});
  EXPECT_EQ(pipe.submit_batch({}), 0u);
  EXPECT_EQ(pipe.now(), 0u);
  EXPECT_EQ(pipe.batches_submitted(), 0u);
}

TEST(Pipeline, ComputeAdvance) {
  AccessPipeline pipe(MachineConfig{.width = 4, .latency = 5});
  pipe.advance(7);
  EXPECT_EQ(pipe.now(), 7u);
}

class PipelineAdditivity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PipelineAdditivity, BatchTimeIsStagesPlusLatencyMinusOne) {
  const std::uint32_t l = GetParam();
  for (std::uint64_t total = 1; total <= 40; ++total) {
    const std::vector<std::uint64_t> one{total};
    EXPECT_EQ(batch_completion_time(one, l), total + l - 1);
    // Splitting the stages across warps must not change the batch time.
    std::vector<std::uint64_t> split;
    std::uint64_t rest = total;
    while (rest > 2) {
      split.push_back(2);
      rest -= 2;
    }
    split.push_back(rest);
    EXPECT_EQ(batch_completion_time(split, l), total + l - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Latencies, PipelineAdditivity,
                         ::testing::Values(1u, 2u, 5u, 100u, 400u));

}  // namespace

// Model extensions: transaction granularity (group_words) and latency
// overlap.  Both must stay consistent across the three timing layers
// (generic warp costs, strided fast path, full machine).
#include <gtest/gtest.h>

#include <vector>

#include "algos/prefix_sums.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "common/rng.hpp"
#include "umm/cost_model.hpp"
#include "umm/machine.hpp"
#include "umm/warp.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

// ---------------------------------------------------------------------------
// Transaction granularity
// ---------------------------------------------------------------------------

TEST(Transaction, GroupDefaultsToWidth) {
  MachineConfig cfg{.width = 32, .latency = 1};
  EXPECT_EQ(cfg.effective_group(), 32u);
  cfg.group_words = 8;
  EXPECT_EQ(cfg.effective_group(), 8u);
}

TEST(Transaction, WarpStagesWithSmallGroups) {
  // 32 consecutive addresses: 1 group at g=32, 4 groups at g=8.
  std::vector<Addr> addrs;
  for (Addr a = 0; a < 32; ++a) addrs.push_back(a);
  EXPECT_EQ(umm_warp_stages(addrs, 32), 1u);
  EXPECT_EQ(umm_warp_stages(addrs, 8), 4u);
  // Scattered (stride 64): one group per lane at either granularity.
  std::vector<Addr> scattered;
  for (Addr j = 0; j < 32; ++j) scattered.push_back(j * 64);
  EXPECT_EQ(umm_warp_stages(scattered, 32), 32u);
  EXPECT_EQ(umm_warp_stages(scattered, 8), 32u);
}

TEST(Transaction, ConfigAwareDispatch) {
  MachineConfig cfg{.width = 32, .latency = 1};
  cfg.group_words = 8;
  std::vector<Addr> addrs;
  for (Addr a = 0; a < 32; ++a) addrs.push_back(a);
  EXPECT_EQ(warp_stages(Model::kUmm, addrs, cfg), 4u);
  // DMM is bank-based; the group size does not apply.
  EXPECT_EQ(warp_stages(Model::kDmm, addrs, cfg), 1u);
}

struct GroupCase {
  std::uint32_t width;
  std::uint32_t group;
  std::uint64_t p;
  std::uint64_t stride;
};

class GroupedCostProperty : public ::testing::TestWithParam<GroupCase> {};

TEST_P(GroupedCostProperty, StridedFastPathMatchesBruteForce) {
  const auto c = GetParam();
  MachineConfig cfg{.width = c.width, .latency = 3};
  cfg.group_words = c.group;
  const StridedStepCost cost(Model::kUmm, cfg, c.p, c.stride);
  for (Addr base = 0; base < 3 * c.group + 7; ++base) {
    // Brute force over all warps.
    std::uint64_t expected = 0;
    for (std::uint64_t lane = 0; lane < c.p; lane += c.width) {
      const std::uint64_t count = std::min<std::uint64_t>(c.width, c.p - lane);
      std::vector<Addr> addrs(count);
      for (std::uint64_t j = 0; j < count; ++j) {
        addrs[j] = base + (lane + j) * c.stride;
      }
      expected += umm_warp_stages(addrs, c.group);
    }
    EXPECT_EQ(cost.stages(base).stages, expected)
        << "base=" << base << " w=" << c.width << " g=" << c.group << " p=" << c.p
        << " stride=" << c.stride;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GroupedCostProperty,
    ::testing::Values(GroupCase{32, 8, 128, 1},     // coalesced, fine groups
                      GroupCase{32, 8, 128, 64},    // scattered
                      GroupCase{32, 8, 100, 1},     // tail warp
                      GroupCase{32, 8, 128, 3},     // delta != 0 cycling
                      GroupCase{32, 12, 96, 5},     // non-power-of-two group
                      GroupCase{4, 3, 18, 2},       // small everything
                      GroupCase{8, 16, 64, 1},      // group wider than warp
                      GroupCase{32, 1, 64, 1}));    // word-granularity

TEST(Transaction, SimulatorAgreesWithEstimator) {
  const trace::Program program = algos::prefix_sums_program(48);
  const std::size_t p = 96;
  Rng rng(4);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::prefix_sums_random_input(48, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  for (const std::uint32_t g : {4u, 8u, 12u}) {
    MachineConfig cfg{.width = 32, .latency = 9};
    cfg.group_words = g;
    for (const auto arr : {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
      const bulk::Layout layout = bulk::make_layout(program, p, arr);
      const auto sim =
          bulk::UmmBulkExecutor(Model::kUmm, cfg, layout).run(program, inputs);
      const auto est = bulk::TimingEstimator(Model::kUmm, cfg, layout).run(program);
      EXPECT_EQ(sim.time_units, est.time_units) << "g=" << g << " " << layout.name();
    }
  }
}

TEST(Transaction, RowColRatioApproachesGroupSize) {
  // With 8-word transactions, the coalescing advantage is ~8 (the paper's
  // measured ~6), not the pure-UMM w = 32.
  const trace::Program program = algos::prefix_sums_program(64);
  const std::size_t p = 1 << 14;
  MachineConfig cfg{.width = 32, .latency = 1};
  cfg.group_words = 8;
  const auto row = bulk::TimingEstimator(
                       Model::kUmm, cfg,
                       bulk::Layout::row_wise(p, 64))
                       .run(program);
  const auto col = bulk::TimingEstimator(
                       Model::kUmm, cfg,
                       bulk::Layout::column_wise(p, 64))
                       .run(program);
  const double ratio =
      static_cast<double>(row.time_units) / static_cast<double>(col.time_units);
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 8.5);
}

TEST(Transaction, BlockedLayoutRejectedOnFastPath) {
  MachineConfig cfg{.width = 32, .latency = 1};
  cfg.group_words = 8;
  EXPECT_THROW(
      bulk::TimingEstimator(Model::kUmm, cfg, bulk::Layout::blocked(64, 16, 32)),
      std::logic_error);
}

// ---------------------------------------------------------------------------
// Latency overlap
// ---------------------------------------------------------------------------

TEST(Overlap, TimerUsesMaxOfBandwidthAndChain) {
  MachineConfig cfg{.width = 4, .latency = 10};
  cfg.overlap_latency = true;
  Machine m(Model::kUmm, cfg, 64);
  const std::vector<Addr> addrs{0, 1, 2, 3};  // 1 stage per step
  std::vector<Word> out(4, 0);
  for (int i = 0; i < 5; ++i) m.step_read(addrs, out);
  // Chain bound: 5 steps * l = 50; bandwidth: 5 stages + 9 = 14.
  EXPECT_EQ(m.time_units(), 50u);
}

TEST(Overlap, BandwidthBoundWhenStagesDominate) {
  MachineConfig cfg{.width = 4, .latency = 2};
  cfg.overlap_latency = true;
  Machine m(Model::kUmm, cfg, 1024);
  // One step with 16 lanes scattered across 16 groups: 16 stages.
  std::vector<Addr> addrs;
  for (Addr j = 0; j < 16; ++j) addrs.push_back(j * 8);
  std::vector<Word> out(16, 0);
  m.step_read(addrs, out);
  // Bandwidth: 16 + 1 = 17 > chain 2.
  EXPECT_EQ(m.time_units(), 17u);
}

TEST(Overlap, EstimatorMatchesMachine) {
  const trace::Program program = algos::prefix_sums_program(32);
  const std::size_t p = 64;
  Rng rng(8);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::prefix_sums_random_input(32, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  MachineConfig cfg{.width = 8, .latency = 25};
  cfg.overlap_latency = true;
  for (const auto arr : {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
    const bulk::Layout layout = bulk::make_layout(program, p, arr);
    const auto sim = bulk::UmmBulkExecutor(Model::kUmm, cfg, layout).run(program, inputs);
    const auto est = bulk::TimingEstimator(Model::kUmm, cfg, layout).run(program);
    EXPECT_EQ(sim.time_units, est.time_units) << layout.name();
  }
}

TEST(Overlap, NeverSlowerThanSerializedAndMeetsLowerBound) {
  const trace::Program program = algos::prefix_sums_program(64);
  const std::uint64_t t = algos::prefix_sums_memory_steps(64);
  for (const std::size_t p : {64u, 1024u, 65536u}) {
    MachineConfig serial{.width = 32, .latency = 100};
    MachineConfig overlap = serial;
    overlap.overlap_latency = true;
    const bulk::Layout layout = bulk::Layout::column_wise(p, 64);
    const auto ts =
        bulk::TimingEstimator(Model::kUmm, serial, layout).run(program).time_units;
    const auto to =
        bulk::TimingEstimator(Model::kUmm, overlap, layout).run(program).time_units;
    EXPECT_LE(to, ts) << "p=" << p;
    const TimeUnits lower = theorem3_lower_bound(t, p, serial);
    EXPECT_GE(to, lower) << "p=" << p;
    EXPECT_LE(to, 2 * lower) << "p=" << p << " (overlap should meet the bound)";
  }
}

TEST(Overlap, ComputeChargesAdd) {
  MachineConfig cfg{.width = 4, .latency = 10};
  cfg.overlap_latency = true;
  cfg.count_compute = true;
  Machine m(Model::kUmm, cfg, 16);
  const std::vector<Addr> addrs{0, 1, 2, 3};
  std::vector<Word> out(4, 0);
  m.step_read(addrs, out);
  m.step_compute();
  m.step_compute();
  EXPECT_EQ(m.time_units(), 10u + 2u);  // chain (1 step * l) + compute
}

}  // namespace

// Algorithm-specific semantic checks beyond the registry sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "algos/edit_distance.hpp"
#include "algos/fft.hpp"
#include "algos/lu_decomposition.hpp"
#include "algos/matmul.hpp"
#include "algos/oblivious_aggregate.hpp"
#include "algos/oblivious_merge.hpp"
#include "algos/oblivious_partition.hpp"
#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "algos/tea_cipher.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using trace::as_f64;
using trace::as_i64;
using trace::from_f64;

// ---------------------------------------------------------------------------
// OPT
// ---------------------------------------------------------------------------

TEST(Opt, MatchesBruteForceOnSmallPolygons) {
  Rng rng(11);
  for (std::size_t n = 4; n <= 10; ++n) {
    for (int trial = 0; trial < 5; ++trial) {
      const std::vector<Word> input = algos::opt_random_input(n, rng);
      std::vector<double> c(n * n);
      for (std::size_t i = 0; i < c.size(); ++i) c[i] = as_f64(input[i]);
      EXPECT_DOUBLE_EQ(algos::opt_native(n, c), algos::opt_brute_force(n, c))
          << "n=" << n;
    }
  }
}

TEST(Opt, TriangleHasSingleTriangulation) {
  // n = 3: the polygon is already a triangle; the DP value is just
  // c[0][2] (the chord closing the parse tree's root region).
  std::vector<double> c(9, 0.0);
  c[0 * 3 + 2] = 7.5;
  c[2 * 3 + 0] = 7.5;
  EXPECT_DOUBLE_EQ(algos::opt_native(3, c), 7.5);
}

TEST(Opt, QuadrilateralPicksCheaperDiagonal) {
  // n = 4: two triangulations, using diagonal (0,2) or (1,3).
  const std::size_t n = 4;
  std::vector<double> c(n * n, 0.0);
  auto set = [&](std::size_t i, std::size_t j, double w) {
    c[i * n + j] = w;
    c[j * n + i] = w;
  };
  set(0, 2, 10.0);  // diagonal A
  set(1, 3, 2.0);   // diagonal B
  set(0, 3, 1.0);   // the root edge weight is added to every triangulation
  EXPECT_DOUBLE_EQ(algos::opt_native(n, c), 2.0 + 1.0);
  set(1, 3, 50.0);
  EXPECT_DOUBLE_EQ(algos::opt_native(n, c), 10.0 + 1.0);
}

TEST(Opt, MIndexLayout) {
  EXPECT_EQ(algos::opt_m_index(8, 1, 7), 64u + 8u + 7u);
}

TEST(Opt, DummyElseKeepsStepCountDataIndependent) {
  // Two adversarial inputs (ascending vs descending weights) must execute
  // exactly the same number of steps.
  const std::size_t n = 8;
  const trace::Program program = algos::opt_program(n);
  std::vector<Word> up(n * n), down(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    up[i] = from_f64(static_cast<double>(i));
    down[i] = from_f64(static_cast<double>(n * n - i));
  }
  const auto r1 = trace::interpret(program, up);
  const auto r2 = trace::interpret(program, down);
  EXPECT_EQ(r1.counts.total(), r2.counts.total());
}

// ---------------------------------------------------------------------------
// FFT
// ---------------------------------------------------------------------------

std::vector<std::complex<double>> naive_dft(const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += x[t] * std::complex<double>{std::cos(ang), std::sin(ang)};
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesNaiveDft) {
  Rng rng(13);
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
    std::vector<double> data(2 * n);
    std::vector<std::complex<double>> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = {rng.next_double(-1, 1), rng.next_double(-1, 1)};
      data[2 * i] = x[i].real();
      data[2 * i + 1] = x[i].imag();
    }
    algos::fft_native(data);
    const auto expected = naive_dft(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[2 * i], expected[i].real(), 1e-9 * static_cast<double>(n));
      EXPECT_NEAR(data[2 * i + 1], expected[i].imag(), 1e-9 * static_cast<double>(n));
    }
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<double> data(16, 0.0);
  data[0] = 1.0;  // delta at t = 0
  algos::fft_native(data);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(data[2 * k], 1.0, 1e-12);
    EXPECT_NEAR(data[2 * k + 1], 0.0, 1e-12);
  }
}

// Regression (PR 11 edge-case sweep): unlike sorting, an FFT cannot be
// padded transparently — zero-padding changes the transform — so the audit
// keeps the loud OBX_CHECK rejection.
TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(algos::fft_program(3), std::logic_error);
  EXPECT_THROW(algos::fft_program(6), std::logic_error);
  EXPECT_THROW(algos::fft_program(100), std::logic_error);
  EXPECT_THROW(algos::fft_program(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Bitonic sort
// ---------------------------------------------------------------------------

TEST(BitonicSort, SortsAdversarialPatterns) {
  const std::size_t n = 64;
  const trace::Program program = algos::bitonic_sort_program(n);
  std::vector<std::vector<double>> patterns;
  std::vector<double> descending(n), constant(n, 3.0), sawtooth(n);
  for (std::size_t i = 0; i < n; ++i) {
    descending[i] = static_cast<double>(n - i);
    sawtooth[i] = static_cast<double>(i % 7);
  }
  patterns = {descending, constant, sawtooth};
  for (const auto& pat : patterns) {
    std::vector<Word> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = from_f64(pat[i]);
    const auto run = trace::interpret(program, input);
    for (std::size_t i = 1; i < n; ++i) {
      EXPECT_LE(as_f64(run.memory[i - 1]), as_f64(run.memory[i]));
    }
  }
}

TEST(BitonicSort, OutputIsAPermutation) {
  const std::size_t n = 32;
  const trace::Program program = algos::bitonic_sort_program(n);
  Rng rng(17);
  std::vector<Word> input = algos::bitonic_sort_random_input(n, rng);
  const auto run = trace::interpret(program, input);
  std::vector<Word> sorted_in = input;
  std::vector<Word> out(run.memory.begin(), run.memory.begin() + static_cast<long>(n));
  auto by_f64 = [](Word a, Word b) { return as_f64(a) < as_f64(b); };
  std::sort(sorted_in.begin(), sorted_in.end(), by_f64);
  EXPECT_EQ(out, sorted_in);
}

// Regression (PR 11 edge-case sweep): bitonic-sort used to reject non-power-
// of-two n; it now pads the network obliviously with +inf sentinels.  One
// regression case per fixed size, including the tiny-n edges.
TEST(BitonicSort, PadsNonPowerOfTwoSizes) {
  Rng rng(43);
  for (const std::size_t n : {1u, 3u, 5u, 6u, 10u, 12u, 100u}) {
    const trace::Program program = algos::bitonic_sort_program(n);
    EXPECT_EQ(program.memory_words, std::bit_ceil(n)) << "n=" << n;
    EXPECT_EQ(program.output_words, n) << "n=" << n;
    const std::vector<Word> input = algos::bitonic_sort_random_input(n, rng);
    const auto run = trace::interpret(program, input);
    const auto expected = algos::bitonic_sort_reference(n, input);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(run.memory[i], expected[i]) << "n=" << n << " word " << i;
    }
  }
}

TEST(BitonicSort, PowerOfTwoStreamIsUnchangedByThePaddingPath) {
  // The padded construction must not perturb the power-of-two network: the
  // goldens (and every fingerprint derived from the stream) depend on it.
  const trace::Program program = algos::bitonic_sort_program(8);
  EXPECT_EQ(program.memory_words, 8u);
  auto gen = program.stream();
  std::size_t steps = 0;
  std::size_t sentinel_stores = 0;
  for (const trace::Step& s : gen) {
    ++steps;
    if (s.kind == trace::StepKind::kImm) ++sentinel_stores;
  }
  EXPECT_EQ(sentinel_stores, 0u);
  EXPECT_EQ(steps, 6u * 4u * 6u);  // 6 phases x 4 compare-exchanges x 6 steps
}

TEST(BitonicSort, RejectsZero) {
  EXPECT_THROW(algos::bitonic_sort_program(0), std::logic_error);
}

// ---------------------------------------------------------------------------
// Edit distance
// ---------------------------------------------------------------------------

TEST(EditDistance, KnownValues) {
  // kitten → sitting is the classic; with equal lengths use 4-symbol words.
  const std::vector<Word> a{0, 1, 2, 3};
  EXPECT_EQ(algos::edit_distance_native(a, a), 0);
  const std::vector<Word> b{0, 1, 2, 0};
  EXPECT_EQ(algos::edit_distance_native(a, b), 1);
  const std::vector<Word> c{3, 2, 1, 0};
  EXPECT_EQ(algos::edit_distance_native(a, c), 4);  // palindromic flip
}

TEST(EditDistance, SymmetryProperty) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 6;
    const auto sa = rng.words_u64(n, 4);
    const auto sb = rng.words_u64(n, 4);
    EXPECT_EQ(algos::edit_distance_native(sa, sb), algos::edit_distance_native(sb, sa));
  }
}

TEST(EditDistance, BoundedByLength) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 8;
    const auto sa = rng.words_u64(n, 4);
    const auto sb = rng.words_u64(n, 4);
    const auto d = algos::edit_distance_native(sa, sb);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, static_cast<std::int64_t>(n));
  }
}

// ---------------------------------------------------------------------------
// TEA
// ---------------------------------------------------------------------------

TEST(Tea, EncryptionChangesPlaintext) {
  std::uint32_t v[2] = {0x01234567u, 0x89abcdefu};
  const std::uint32_t k[4] = {1, 2, 3, 4};
  algos::tea_encrypt_block(v, k);
  EXPECT_NE(v[0], 0x01234567u);
  EXPECT_NE(v[1], 0x89abcdefu);
}

TEST(Tea, DecryptionInverts) {
  // Inline TEA decryption (the inverse rounds) must restore the plaintext.
  std::uint32_t v[2] = {0xdeadbeefu, 0xcafebabeu};
  const std::uint32_t k[4] = {0x11111111u, 0x22222222u, 0x33333333u, 0x44444444u};
  const std::uint32_t p0 = v[0];
  const std::uint32_t p1 = v[1];
  algos::tea_encrypt_block(v, k);
  std::uint32_t sum = 0x9e3779b9u * 32;
  for (int i = 0; i < 32; ++i) {
    v[1] -= ((v[0] << 4) + k[2]) ^ (v[0] + sum) ^ ((v[0] >> 5) + k[3]);
    v[0] -= ((v[1] << 4) + k[0]) ^ (v[1] + sum) ^ ((v[1] >> 5) + k[1]);
    sum -= 0x9e3779b9u;
  }
  EXPECT_EQ(v[0], p0);
  EXPECT_EQ(v[1], p1);
}

TEST(Tea, ComposedEncryptDecryptIsIdentityOnPayload) {
  // One composed oblivious program: encrypt ; decrypt.
  const std::size_t blocks = 3;
  const trace::Program round_trip = trace::concat_programs(
      algos::tea_program(blocks), algos::tea_decrypt_program(blocks));
  Rng rng(41);
  const std::vector<Word> plain = algos::tea_random_input(blocks, rng);
  const auto run = trace::interpret(round_trip, plain);
  EXPECT_EQ(run.memory, plain);
}

TEST(Tea, IrDecryptInvertsIrEncrypt) {
  // Chain the two oblivious programs through the interpreter: the payload
  // must round-trip bit-exactly.
  const std::size_t blocks = 4;
  Rng rng(31);
  const std::vector<Word> plain = algos::tea_random_input(blocks, rng);

  const auto enc = trace::interpret(algos::tea_program(blocks), plain);
  const auto dec = trace::interpret(algos::tea_decrypt_program(blocks), enc.memory);
  EXPECT_EQ(dec.memory, plain);
  // And the ciphertext is not the plaintext.
  EXPECT_NE(enc.memory, plain);
}

TEST(Tea, NativeDecryptInverts) {
  std::uint32_t v[2] = {0x12345678u, 0x9abcdef0u};
  const std::uint32_t k[4] = {7, 8, 9, 10};
  const std::uint32_t p0 = v[0], p1 = v[1];
  algos::tea_encrypt_block(v, k);
  algos::tea_decrypt_block(v, k);
  EXPECT_EQ(v[0], p0);
  EXPECT_EQ(v[1], p1);
}

TEST(Tea, BlocksAreIndependent) {
  // Encrypting [b0, b1] must equal encrypting b0 and b1 separately (ECB).
  Rng rng(29);
  std::vector<Word> two = algos::tea_random_input(2, rng);
  std::vector<Word> first(two.begin(), two.begin() + 6);
  std::vector<Word> second(two.begin(), two.begin() + 4);
  second.push_back(two[6]);
  second.push_back(two[7]);
  const auto both = algos::tea_reference(2, two);
  const auto only_first = algos::tea_reference(1, first);
  const auto only_second = algos::tea_reference(1, second);
  EXPECT_EQ(both[0], only_first[0]);
  EXPECT_EQ(both[1], only_first[1]);
  EXPECT_EQ(both[2], only_second[0]);
  EXPECT_EQ(both[3], only_second[1]);
}

// ---------------------------------------------------------------------------
// LU decomposition
// ---------------------------------------------------------------------------

TEST(Lu, ReconstructsTheMatrix) {
  // L (unit diagonal) times U must reproduce A to rounding error.
  Rng rng(37);
  for (const std::size_t n : {2u, 4u, 8u, 16u}) {
    const std::vector<Word> input = algos::lu_random_input(n, rng);
    const std::vector<Word> factored = algos::lu_reference(n, input);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double sum = 0.0;
        for (std::size_t k = 0; k <= std::min(i, j); ++k) {
          const double l = k == i ? 1.0 : as_f64(factored[i * n + k]);
          const double u = as_f64(factored[k * n + j]);
          sum += l * u;
        }
        EXPECT_NEAR(sum, as_f64(input[i * n + j]), 1e-9) << "n=" << n << " (" << i
                                                         << "," << j << ")";
      }
    }
  }
}

TEST(Lu, IdentityIsFixedPoint) {
  const std::size_t n = 4;
  std::vector<Word> eye(n * n, from_f64(0.0));
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = from_f64(1.0);
  EXPECT_EQ(algos::lu_reference(n, eye), eye);
}

// ---------------------------------------------------------------------------
// Matmul / prefix sums extras
// ---------------------------------------------------------------------------

TEST(Matmul, IdentityIsNeutral) {
  const std::size_t n = 4;
  std::vector<Word> input(2 * n * n, from_f64(0.0));
  Rng rng(31);
  for (std::size_t i = 0; i < n * n; ++i) input[i] = from_f64(rng.next_double(-5, 5));
  for (std::size_t i = 0; i < n; ++i) input[n * n + i * n + i] = from_f64(1.0);
  const auto c = algos::matmul_reference(n, input);
  for (std::size_t i = 0; i < n * n; ++i) EXPECT_EQ(c[i], input[i]);
}

TEST(PrefixSums, LastElementIsTotal) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  algos::prefix_sums_native(v);
  EXPECT_DOUBLE_EQ(v[3], 10.0);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

// ---------------------------------------------------------------------------
// Multicore-oblivious family (merge / partition / aggregate)
// ---------------------------------------------------------------------------

TEST(ObliviousMerge, MergesAdversarialRunShapes) {
  // Interleaved, disjoint, and fully duplicate runs at a non-power-of-two
  // length.
  const std::size_t n = 5;
  const trace::Program program = algos::oblivious_merge_program(n);
  const std::vector<std::vector<double>> runs = {
      {1, 3, 5, 7, 9, 2, 4, 6, 8, 10},       // interleaved
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},       // disjoint (A entirely below B)
      {6, 7, 8, 9, 10, 1, 2, 3, 4, 5},       // disjoint (B entirely below A)
      {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},        // all duplicates
  };
  for (const auto& vals : runs) {
    std::vector<Word> input(2 * n);
    for (std::size_t i = 0; i < 2 * n; ++i) input[i] = from_f64(vals[i]);
    const auto run = trace::interpret(program, input);
    const auto expected = algos::oblivious_merge_reference(n, input);
    for (std::size_t i = 0; i < 2 * n; ++i) EXPECT_EQ(run.memory[i], expected[i]);
  }
}

TEST(ObliviousMerge, SingleWordRuns) {
  const trace::Program program = algos::oblivious_merge_program(1);
  const std::vector<Word> input = {from_f64(4.0), from_f64(-3.0)};
  const auto run = trace::interpret(program, input);
  EXPECT_EQ(as_f64(run.memory[0]), -3.0);
  EXPECT_EQ(as_f64(run.memory[1]), 4.0);
}

TEST(ObliviousPartition, IsStable) {
  // Values with equal magnitude but distinguishable payloads: order within
  // each side must be preserved.
  const std::size_t n = 6;
  const trace::Program program = algos::oblivious_partition_program(n);
  const std::vector<double> vals = {5.0, -1.0, 7.0, -2.0, 6.0, -3.0};
  std::vector<Word> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = from_f64(vals[i]);
  const auto run = trace::interpret(program, input);
  const std::vector<double> expected = {-1.0, -2.0, -3.0, 5.0, 7.0, 6.0};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(as_f64(run.memory[i]), expected[i]) << "word " << i;
  }
}

TEST(ObliviousPartition, AllOnOneSideIsIdentity) {
  const std::size_t n = 4;
  const trace::Program program = algos::oblivious_partition_program(n);
  for (const double sign : {1.0, -1.0}) {
    std::vector<Word> input(n);
    for (std::size_t i = 0; i < n; ++i) {
      input[i] = from_f64(sign * static_cast<double>(i + 1));
    }
    const auto run = trace::interpret(program, input);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(run.memory[i], input[i]);
  }
}

TEST(ObliviousAggregate, SumsLandOnGroupBoundaries) {
  // Keys {7, 3, 7, 3, 9}: sorted groups are 3:{b,d} 7:{a,c} 9:{e}.
  const std::size_t n = 5;
  const trace::Program program = algos::oblivious_aggregate_program(n);
  std::vector<Word> input(2 * n);
  const std::int64_t keys[] = {7, 3, 7, 3, 9};
  const double vals[] = {1.0, 10.0, 2.0, 20.0, 100.0};
  for (std::size_t i = 0; i < n; ++i) {
    input[i] = trace::from_i64(keys[i]);
    input[n + i] = from_f64(vals[i]);
  }
  const auto run = trace::interpret(program, input);
  const std::int64_t want_keys[] = {3, 3, 7, 7, 9};
  const double want_vals[] = {0.0, 30.0, 0.0, 3.0, 100.0};
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(as_i64(run.memory[i]), want_keys[i]) << "key " << i;
    EXPECT_EQ(as_f64(run.memory[n + i]), want_vals[i]) << "value " << i;
  }
}

TEST(ObliviousAggregate, SingletonGroupsKeepTheirValues) {
  const std::size_t n = 3;
  const trace::Program program = algos::oblivious_aggregate_program(n);
  std::vector<Word> input = {trace::from_i64(30), trace::from_i64(10),
                             trace::from_i64(20), from_f64(3.5),
                             from_f64(1.5),       from_f64(2.5)};
  const auto run = trace::interpret(program, input);
  EXPECT_EQ(as_i64(run.memory[0]), 10);
  EXPECT_EQ(as_i64(run.memory[1]), 20);
  EXPECT_EQ(as_i64(run.memory[2]), 30);
  EXPECT_EQ(as_f64(run.memory[3]), 1.5);
  EXPECT_EQ(as_f64(run.memory[4]), 2.5);
  EXPECT_EQ(as_f64(run.memory[5]), 3.5);
}

TEST(ObliviousFamily, RejectsZeroLength) {
  EXPECT_THROW(algos::oblivious_merge_program(0), std::logic_error);
  EXPECT_THROW(algos::oblivious_partition_program(0), std::logic_error);
  EXPECT_THROW(algos::oblivious_aggregate_program(0), std::logic_error);
}

}  // namespace

// Differential fuzzing: random oblivious programs executed through every
// engine must agree bit-for-bit, and both timing paths must coincide.
//
// For each seed: generate a random (but valid) step stream, random machine
// parameters and arrangement, then check
//   HostBulkExecutor lane j  ==  interpret(program, input_j)     (function)
//   UmmBulkExecutor          ==  HostBulkExecutor                (function)
//   UmmBulkExecutor units    ==  TimingEstimator units           (timing)
// across serialized/overlap and group-size variants.
#include <gtest/gtest.h>

#include <vector>

#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "common/rng.hpp"
#include "opt/optimizer.hpp"
#include "trace/interpreter.hpp"
#include "trace/program.hpp"
#include "trace/serialize.hpp"
#include "trace/step.hpp"

namespace {

using namespace obx;
using trace::Op;
using trace::Step;

/// All ALU ops the generator may emit (every op in the ISA).
constexpr Op kOps[] = {
    Op::kNop,  Op::kAddF, Op::kSubF, Op::kMulF, Op::kDivF,    Op::kMinF,
    Op::kMaxF, Op::kNegF, Op::kAddI, Op::kSubI, Op::kMulI,    Op::kMinI,
    Op::kMaxI, Op::kAnd,  Op::kOr,   Op::kXor,  Op::kShl,     Op::kShr,
    Op::kNotU, Op::kLtF,  Op::kLeF,  Op::kEqF,  Op::kLtI,     Op::kLeI,
    Op::kEqI,  Op::kNeI,  Op::kLtU,  Op::kSelect, Op::kCmovLtF, Op::kCmovLtI,
    Op::kMov};

trace::Program random_program(Rng& rng) {
  const std::size_t n = 1 + rng.next_below(64);
  const std::size_t regs = 1 + rng.next_below(8);
  const std::size_t steps = 1 + rng.next_below(300);

  std::vector<Step> body;
  body.reserve(steps);
  auto reg = [&] { return static_cast<std::uint8_t>(rng.next_below(regs)); };
  auto addr = [&] { return static_cast<Addr>(rng.next_below(n)); };
  for (std::size_t s = 0; s < steps; ++s) {
    switch (rng.next_below(4)) {
      case 0:
        body.push_back(Step::load(reg(), addr()));
        break;
      case 1:
        body.push_back(Step::store(addr(), reg()));
        break;
      case 2:
        body.push_back(
            Step::alu(kOps[rng.next_below(std::size(kOps))], reg(), reg(), reg(), reg()));
        break;
      default:
        body.push_back(Step::immediate(reg(), rng.next_u64()));
        break;
    }
  }
  return trace::make_replay_program("fuzz", n, n, 0, n, regs, std::move(body));
}

class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllEnginesAgree) {
  Rng rng(GetParam() * 0x9e3779b9ULL + 1);
  const trace::Program program = random_program(rng);
  const std::size_t p = 1 + rng.next_below(40);

  // Inputs: arbitrary bit patterns (half float-ish, half raw).
  std::vector<Word> inputs(p * program.input_words);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inputs[i] = (i % 2 == 0) ? rng.next_u64()
                             : std::bit_cast<Word>(rng.next_double(-1e3, 1e3));
  }

  umm::MachineConfig cfg;
  cfg.width = static_cast<std::uint32_t>(1 + rng.next_below(40));
  cfg.latency = static_cast<std::uint32_t>(1 + rng.next_below(100));
  cfg.count_compute = rng.next_below(2) == 0;
  cfg.overlap_latency = rng.next_below(2) == 0;
  if (rng.next_below(2) == 0) {
    cfg.group_words = static_cast<std::uint32_t>(1 + rng.next_below(2 * cfg.width));
  }
  const auto arrangement = rng.next_below(2) == 0 ? bulk::Arrangement::kRowWise
                                                  : bulk::Arrangement::kColumnWise;
  const umm::Model model = rng.next_below(2) == 0 ? umm::Model::kUmm : umm::Model::kDmm;
  const bulk::Layout layout = bulk::make_layout(program, p, arrangement);

  // 1. Host executor vs scalar interpreter, per lane.
  const bulk::HostBulkExecutor host(layout);
  const bulk::HostRunResult host_run = host.run(program, inputs);
  const std::vector<Word> host_out = host.gather_outputs(program, host_run.memory);
  for (std::size_t j = 0; j < p; ++j) {
    const std::span<const Word> input(inputs.data() + j * program.input_words,
                                      program.input_words);
    const trace::InterpreterResult ref = trace::interpret(program, input);
    const auto expected = ref.output(program);
    for (std::size_t i = 0; i < program.output_words; ++i) {
      ASSERT_EQ(host_out[j * program.output_words + i], expected[i])
          << "lane " << j << " word " << i << " (seed " << GetParam() << ")";
    }
  }

  // 2. Machine simulator vs host executor (function) and estimator (timing).
  const bulk::UmmBulkExecutor sim(model, cfg, layout);
  const bulk::UmmRunResult sim_run = sim.run(program, inputs);
  ASSERT_EQ(sim_run.memory, host_run.memory) << "seed " << GetParam();

  const bulk::TimingEstimator estimator(model, cfg, layout);
  const bulk::TimingResult est = estimator.run(program);
  ASSERT_EQ(sim_run.time_units, est.time_units)
      << "seed " << GetParam() << " w=" << cfg.width << " l=" << cfg.latency
      << " g=" << cfg.group_words << " overlap=" << cfg.overlap_latency << " "
      << layout.name() << (model == umm::Model::kUmm ? " UMM" : " DMM");
  ASSERT_EQ(sim_run.stats.stages_total, est.stages_total) << "seed " << GetParam();

  // 3. Optimiser: outputs preserved, step counts never grow.
  const opt::OptimizeResult optimized = opt::optimize(program);
  EXPECT_LE(optimized.after.total(), optimized.before.total());
  {
    const std::span<const Word> input(inputs.data(), program.input_words);
    const trace::InterpreterResult a = trace::interpret(program, input);
    const trace::InterpreterResult b = trace::interpret(optimized.program, input);
    const auto ea = a.output(program);
    const auto eb = b.output(optimized.program);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      ASSERT_EQ(ea[i], eb[i]) << "optimizer broke word " << i << " (seed "
                              << GetParam() << ")";
    }
  }

  // 4. Serialisation round-trips the exact step stream.
  const trace::Program parsed = trace::parse_program(trace::serialize_program(program));
  auto g1 = program.stream();
  auto g2 = parsed.stream();
  trace::Step s1, s2;
  while (g1.next(s1)) {
    ASSERT_TRUE(g2.next(s2));
    ASSERT_EQ(s1, s2) << "seed " << GetParam();
  }
  ASSERT_FALSE(g2.next(s2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz, ::testing::Range<std::uint64_t>(0, 96));

}  // namespace

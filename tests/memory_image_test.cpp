// Flat functional memory.
#include <gtest/gtest.h>

#include "umm/memory_image.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

TEST(MemoryImage, ZeroInitialised) {
  MemoryImage mem(8);
  EXPECT_EQ(mem.size(), 8u);
  for (Addr a = 0; a < 8; ++a) EXPECT_EQ(mem.load(a), 0u);
}

TEST(MemoryImage, StoreLoadRoundTrip) {
  MemoryImage mem(4);
  mem.store(2, 42);
  EXPECT_EQ(mem.load(2), 42u);
  EXPECT_EQ(mem.load(1), 0u);
}

TEST(MemoryImage, FillAndExtract) {
  MemoryImage mem(10);
  const std::vector<Word> data{1, 2, 3};
  mem.fill(4, data);
  std::vector<Word> out(3);
  mem.extract(4, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(mem.load(3), 0u);
  EXPECT_EQ(mem.load(7), 0u);
}

TEST(MemoryImage, BoundsCheckedTransfers) {
  MemoryImage mem(4);
  const std::vector<Word> data{1, 2, 3};
  EXPECT_THROW(mem.fill(2, data), std::logic_error);
  std::vector<Word> out(3);
  EXPECT_THROW(mem.extract(2, out), std::logic_error);
}

TEST(MemoryImage, SpanExposesStorage) {
  MemoryImage mem(4);
  mem.span()[1] = 9;
  EXPECT_EQ(mem.load(1), 9u);
  const MemoryImage& cref = mem;
  EXPECT_EQ(cref.span()[1], 9u);
}

}  // namespace

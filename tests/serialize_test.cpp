// .obx program serialisation round-trips.
#include <gtest/gtest.h>

#include "algos/algorithm.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "trace/serialize.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;
using namespace obx::trace;

TEST(Serialize, HeaderAndBodyFormat) {
  const Program p = algos::find("prefix-sums").make_program(2);
  const std::string text = serialize_program(p);
  EXPECT_NE(text.find("obx 1 memory=2 input=2 output=0+2 regs=2"), std::string::npos);
  EXPECT_NE(text.find("name=\"prefix-sums(n=2)\""), std::string::npos);
  EXPECT_NE(text.find("imm r0, 0x0"), std::string::npos);
  EXPECT_NE(text.find("load r1, [0]"), std::string::npos);
  EXPECT_NE(text.find("addf r0, r0, r1, r0"), std::string::npos);
  EXPECT_NE(text.find("store [0], r0"), std::string::npos);
}

class SerializeRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeRoundTrip, ParseOfDumpIsIdentical) {
  const algos::Algorithm& algo = algos::find(GetParam());
  const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
  const Program original = algo.make_program(n);
  const Program parsed = parse_program(serialize_program(original));

  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.memory_words, original.memory_words);
  EXPECT_EQ(parsed.input_words, original.input_words);
  EXPECT_EQ(parsed.output_offset, original.output_offset);
  EXPECT_EQ(parsed.output_words, original.output_words);
  EXPECT_EQ(parsed.register_count, original.register_count);

  // Step-for-step identity.
  auto g1 = original.stream();
  auto g2 = parsed.stream();
  Step s1, s2;
  std::size_t idx = 0;
  while (g1.next(s1)) {
    ASSERT_TRUE(g2.next(s2)) << "parsed program shorter at step " << idx;
    ASSERT_EQ(s1, s2) << "step " << idx;
    ++idx;
  }
  EXPECT_FALSE(g2.next(s2));

  // Semantic identity on a random input.
  Rng rng(99);
  const auto input = algo.make_input(n, rng);
  const auto a = interpret(original, input);
  const auto b = interpret(parsed, input);
  EXPECT_EQ(a.memory, b.memory);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SerializeRoundTrip,
                         ::testing::Values("prefix-sums", "opt-triangulation", "fft",
                                           "tea", "edit-distance", "horner"),
                         [](const auto& param_info) {
                           std::string name = param_info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const Program p = parse_program(
      "obx 1 memory=4 input=2 output=2+1 regs=3 name=\"hand written\"\n"
      "# a comment\n"
      "\n"
      "load r0, [0]\n"
      "load r1, [1]\n"
      "mulf r2, r0, r1, r0\n"
      "store [2], r2\n");
  EXPECT_EQ(p.name, "hand written");
  EXPECT_EQ(p.memory_steps(), 3u);
  const std::vector<Word> input{from_f64(3.0), from_f64(4.0)};
  EXPECT_EQ(as_f64(interpret(p, input).memory[2]), 12.0);
}

TEST(Serialize, ImmediatePreservesBitPattern) {
  const double v = -1234.5678e-9;
  Program p = make_replay_program("imm", 1, 0, 0, 1, 1,
                                  {Step::imm_f64(0, v), Step::store(0, 0)});
  const Program parsed = parse_program(serialize_program(p));
  EXPECT_EQ(as_f64(interpret(parsed, {}).memory[0]), v);
}

TEST(Serialize, ParseErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const std::string& needle) {
    try {
      parse_program(text);
      FAIL() << "expected parse failure";
    } catch (const std::logic_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
  };
  expect_error("bogus header\n", "line 1");
  expect_error("obx 1 memory=4\nfrobnicate r0\n", "line 2");
  expect_error("obx 1 memory=4\nload r0\n", "load needs");
  expect_error("obx 1 memory=4\nload rX, [0]\n", "bad number");
  expect_error("obx 1 memory=4\nload x0, [0]\n", "bad register");
  expect_error("obx 2 memory=4\n", "bad header");
  expect_error("obx 1 input=4\n", "missing memory");
}

TEST(Serialize, NameWithSpacesRoundTrips) {
  Program p = make_replay_program("a name with spaces", 2, 0, 0, 1, 1,
                                  {Step::load(0, 0)});
  EXPECT_EQ(parse_program(serialize_program(p)).name, "a name with spaces");
}

}  // namespace

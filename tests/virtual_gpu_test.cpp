// The GTX-Titan-like virtual device.
#include <gtest/gtest.h>

#include "algos/prefix_sums.hpp"
#include "gpusim/virtual_gpu.hpp"

namespace {

using namespace obx;
using namespace obx::gpusim;

TEST(VirtualGpu, TitanSpec) {
  const GpuSpec spec = gtx_titan();
  EXPECT_EQ(spec.multiprocessors, 14u);     // paper: 14 SMs
  EXPECT_EQ(spec.threads_per_block, 64u);   // paper's launch config
  EXPECT_EQ(spec.memory.width, 32u);        // CUDA warp
  EXPECT_GT(spec.memory.latency, 1u);       // DRAM latency
  EXPECT_GT(spec.clock_hz, 1e8);
}

TEST(VirtualGpu, SecondsConversion) {
  GpuSpec spec = gtx_titan();
  spec.clock_hz = 1e9;
  const VirtualGpu gpu(spec);
  EXPECT_DOUBLE_EQ(gpu.seconds_from_units(1000), 1e-6);
}

TEST(VirtualGpu, BlocksForLaunch) {
  const VirtualGpu gpu(gtx_titan());
  EXPECT_EQ(gpu.blocks_for(64), 1u);
  EXPECT_EQ(gpu.blocks_for(65), 2u);
  EXPECT_EQ(gpu.blocks_for(1 << 20), (1u << 20) / 64);
}

TEST(VirtualGpu, ColumnWiseNeverSlowerThanRowWise) {
  const VirtualGpu gpu(gtx_titan());
  const trace::Program program = algos::prefix_sums_program(32);
  for (std::size_t p : {64u, 1024u, 65536u}) {
    const TimeUnits row = gpu.estimate_units(program, p, bulk::Arrangement::kRowWise);
    const TimeUnits col = gpu.estimate_units(program, p, bulk::Arrangement::kColumnWise);
    EXPECT_LE(col, row) << "p=" << p;
    EXPECT_DOUBLE_EQ(gpu.estimate_seconds(program, p, bulk::Arrangement::kRowWise),
                     gpu.seconds_from_units(row));
  }
}

TEST(VirtualGpu, LatencyFloorDominatesSmallP) {
  // For p <= w the two arrangements cost the same (one warp, latency-bound):
  // the flat region at the left of the paper's Figure 11.
  const VirtualGpu gpu(gtx_titan());
  const trace::Program program = algos::prefix_sums_program(32);
  const TimeUnits at32 = gpu.estimate_units(program, 32, bulk::Arrangement::kColumnWise);
  const TimeUnits at64 = gpu.estimate_units(program, 64, bulk::Arrangement::kColumnWise);
  // Doubling p in the latency-bound regime barely moves the time.
  EXPECT_LT(static_cast<double>(at64) / static_cast<double>(at32), 1.05);
}

TEST(VirtualGpu, RejectsBadSpec) {
  GpuSpec spec = gtx_titan();
  spec.clock_hz = 0;
  EXPECT_THROW(VirtualGpu{spec}, std::logic_error);
}

}  // namespace

// The HMM staged schedule: admissibility, phase accounting, and the
// data-reuse crossover against the paper's global-only execution.
#include <gtest/gtest.h>

#include "algos/opt_triangulation.hpp"
#include "algos/prefix_sums.hpp"
#include "hmm/hmm_estimator.hpp"

namespace {

using namespace obx;
using namespace obx::hmm;

HmmConfig small_hmm() {
  HmmConfig cfg;
  cfg.num_sms = 4;
  cfg.shared = umm::MachineConfig{.width = 8, .latency = 2};
  cfg.global = umm::MachineConfig{.width = 8, .latency = 100};
  cfg.shared_capacity_words = 1024;
  return cfg;
}

TEST(Hmm, ConfigValidation) {
  HmmConfig cfg = small_hmm();
  cfg.num_sms = 0;
  EXPECT_THROW(HmmEstimator{cfg}, std::logic_error);
  cfg = small_hmm();
  cfg.shared_capacity_words = 0;
  EXPECT_THROW(HmmEstimator{cfg}, std::logic_error);
  EXPECT_NO_THROW(HmmEstimator{small_hmm()});
}

TEST(Hmm, AdmissibilityFollowsCapacity) {
  const HmmEstimator est(small_hmm());
  EXPECT_TRUE(est.admissible(algos::prefix_sums_program(512)));
  EXPECT_FALSE(est.admissible(algos::prefix_sums_program(2048)));
  EXPECT_THROW(est.run(algos::prefix_sums_program(2048), 64), std::logic_error);
}

TEST(Hmm, PhaseAccountingExact) {
  // prefix-sums n=16, p=64 over 4 SMs (16 lanes each), w=8, L=100, l_s=2.
  const HmmEstimator est(small_hmm());
  const trace::Program program = algos::prefix_sums_program(16);
  const HmmTiming t = est.run(program, 64);
  EXPECT_EQ(t.lanes_per_sm, 16u);
  // copy-in: ceil(64/8)*16 + 100 - 1 = 128 + 99 = 227; same out.
  EXPECT_EQ(t.copy_in, 227u);
  EXPECT_EQ(t.copy_out, 227u);
  // compute: 32 steps * (16/8 + 2 - 1) = 32 * 3 = 96.
  EXPECT_EQ(t.compute, 96u);
  EXPECT_EQ(t.total(), 227u + 227u + 96u);
}

TEST(Hmm, PrefixSumsGainsLittle) {
  // t = 2n with n words of I/O: staging roughly doubles the global traffic,
  // so the staged schedule must NOT win big (and may lose).
  const HmmEstimator est(small_hmm());
  const trace::Program program = algos::prefix_sums_program(256);
  const std::size_t p = 1024;
  const TimeUnits staged = est.run(program, p).total();
  const TimeUnits global = est.global_only(program, p);
  EXPECT_GT(static_cast<double>(staged) / static_cast<double>(global), 0.5);
}

TEST(Hmm, OptGainsHugely) {
  // OPT: t = Θ(n³) over Θ(n²) words — staging pays the copy once and runs
  // the heavy DP at shared latency.
  const HmmEstimator est(small_hmm());
  const trace::Program program = algos::opt_program(16);  // 512 words, fits
  const std::size_t p = 1024;
  const TimeUnits staged = est.run(program, p).total();
  const TimeUnits global = est.global_only(program, p);
  EXPECT_LT(staged * 2, global) << "staged=" << staged << " global=" << global;
}

TEST(Hmm, MoreSmsShrinkComputePhase) {
  HmmConfig cfg = small_hmm();
  const trace::Program program = algos::opt_program(12);
  cfg.num_sms = 1;
  const HmmTiming one = HmmEstimator(cfg).run(program, 256);
  cfg.num_sms = 8;
  const HmmTiming eight = HmmEstimator(cfg).run(program, 256);
  EXPECT_LT(eight.compute, one.compute);
  EXPECT_EQ(eight.copy_in, one.copy_in);  // global traffic is unchanged
  EXPECT_EQ(one.lanes_per_sm, 256u);
  EXPECT_EQ(eight.lanes_per_sm, 32u);
}

TEST(Hmm, TitanPresetIsConsistent) {
  const HmmConfig cfg = gtx_titan_hmm();
  EXPECT_EQ(cfg.num_sms, 14u);
  EXPECT_EQ(cfg.global.width, 32u);
  EXPECT_GT(cfg.global.latency, cfg.shared.latency);
  EXPECT_NO_THROW(HmmEstimator{cfg});
}

TEST(Hmm, LanesRoundUpToBusiestSm) {
  const HmmEstimator est(small_hmm());
  const trace::Program program = algos::prefix_sums_program(8);
  EXPECT_EQ(est.run(program, 5).lanes_per_sm, 2u);   // 5 lanes on 4 SMs
  EXPECT_EQ(est.run(program, 4).lanes_per_sm, 1u);
}

}  // namespace

// Per-warp stage counts: UMM address-group counting, DMM bank conflicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "umm/address.hpp"
#include "umm/warp.hpp"

namespace {

using namespace obx;
using namespace obx::umm;

TEST(UmmWarp, CoalescedAccessIsOneStage) {
  // w consecutive, aligned addresses → one address group.
  std::vector<Addr> addrs;
  for (Addr a = 64; a < 96; ++a) addrs.push_back(a);
  EXPECT_EQ(umm_warp_stages(addrs, 32), 1u);
}

TEST(UmmWarp, MisalignedConsecutiveIsTwoStages) {
  std::vector<Addr> addrs;
  for (Addr a = 65; a < 97; ++a) addrs.push_back(a);
  EXPECT_EQ(umm_warp_stages(addrs, 32), 2u);
}

TEST(UmmWarp, FullyScatteredIsWStages) {
  // Stride >= w puts every lane in its own address group.
  std::vector<Addr> addrs;
  for (Addr j = 0; j < 32; ++j) addrs.push_back(j * 100);
  EXPECT_EQ(umm_warp_stages(addrs, 32), 32u);
}

TEST(UmmWarp, SameAddressBroadcastIsOneStage) {
  std::vector<Addr> addrs(32, Addr{123});
  EXPECT_EQ(umm_warp_stages(addrs, 32), 1u);
}

TEST(UmmWarp, InactiveLanesIgnored) {
  std::vector<Addr> addrs(32, kInvalidAddr);
  EXPECT_EQ(umm_warp_stages(addrs, 32), 0u);
  addrs[5] = 1000;
  EXPECT_EQ(umm_warp_stages(addrs, 32), 1u);
  addrs[17] = 2000;
  EXPECT_EQ(umm_warp_stages(addrs, 32), 2u);
}

TEST(UmmWarp, PaperFigure4FirstWarpSpansThreeGroups) {
  // Fig. 4: W(0)'s requests fall in 3 address groups (w = 4).
  const std::vector<Addr> addrs{0, 5, 6, 10};  // groups 0, 1, 1, 2
  EXPECT_EQ(umm_warp_stages(addrs, 4), 3u);
}

TEST(DmmWarp, ConflictFreeIsOneStage) {
  // Distinct banks: stride 1 over w addresses.
  std::vector<Addr> addrs;
  for (Addr j = 0; j < 32; ++j) addrs.push_back(j);
  EXPECT_EQ(dmm_warp_stages(addrs, 32), 1u);
}

TEST(DmmWarp, StrideWIsFullConflict) {
  // Stride w: every lane hits bank 0.
  std::vector<Addr> addrs;
  for (Addr j = 0; j < 32; ++j) addrs.push_back(j * 32);
  EXPECT_EQ(dmm_warp_stages(addrs, 32), 32u);
}

TEST(DmmWarp, PartialConflict) {
  // Two lanes per bank → 2 stages.
  std::vector<Addr> addrs;
  for (Addr j = 0; j < 16; ++j) {
    addrs.push_back(j);
    addrs.push_back(j + 32);
  }
  EXPECT_EQ(dmm_warp_stages(addrs, 32), 2u);
}

TEST(DmmWarp, InactiveLanesIgnored) {
  std::vector<Addr> addrs(8, kInvalidAddr);
  EXPECT_EQ(dmm_warp_stages(addrs, 4), 0u);
}

TEST(Warp, DispatchOnModel) {
  // Stride-w addresses: 1 group on the UMM... no — stride w means groups
  // differ; contrast broadcast (UMM-friendly) vs conflict (DMM-hostile).
  std::vector<Addr> broadcast(4, Addr{40});
  EXPECT_EQ(warp_stages(Model::kUmm, broadcast, 4), 1u);
  EXPECT_EQ(warp_stages(Model::kDmm, broadcast, 4), 4u);
}

struct WarpCase {
  std::uint32_t width;
  std::uint64_t stride;
};

class WarpStagesProperty : public ::testing::TestWithParam<WarpCase> {};

TEST_P(WarpStagesProperty, MatchesSetBasedOracle) {
  const auto [w, stride] = GetParam();
  Rng rng(7 * w + stride);
  for (int trial = 0; trial < 20; ++trial) {
    const Addr base = rng.next_below(1000);
    std::vector<Addr> addrs;
    for (std::uint64_t j = 0; j < w; ++j) addrs.push_back(base + j * stride);

    std::set<std::uint64_t> groups;
    std::vector<std::uint64_t> bank_counts(w, 0);
    for (Addr a : addrs) {
      groups.insert(address_group_of(a, w));
      ++bank_counts[bank_of(a, w)];
    }
    EXPECT_EQ(umm_warp_stages(addrs, w), groups.size());
    EXPECT_EQ(dmm_warp_stages(addrs, w),
              *std::max_element(bank_counts.begin(), bank_counts.end()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    StridePatterns, WarpStagesProperty,
    ::testing::Values(WarpCase{4, 1}, WarpCase{4, 2}, WarpCase{4, 3}, WarpCase{4, 4},
                      WarpCase{4, 5}, WarpCase{8, 1}, WarpCase{8, 6}, WarpCase{8, 8},
                      WarpCase{32, 1}, WarpCase{32, 7}, WarpCase{32, 32},
                      WarpCase{32, 33}, WarpCase{32, 1000}));

}  // namespace

// Network fault campaign: abusive peers (droppers, torn frames, slow-loris,
// quota storms) and injected executor faults must never break the wire-level
// exactly-once ledger or leak a job.
#include <gtest/gtest.h>

#include "check/net_fault.hpp"

namespace {

using namespace obx;
using namespace obx::check;

TEST(NetFaultCampaign, CleanEngineAbusivePeers) {
  NetCampaignOptions options;
  options.seed = 1;
  options.jobs_per_client = 48;
  options.tenants = 4;
  options.abusers = 3;
  options.storm_jobs = 32;
  const NetCampaignReport report = run_net_fault_campaign(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.client_completed, 0u);
  EXPECT_GT(report.server.protocol_errors, 0u)
      << "the garbage writers should have tripped the frame decoder";
}

TEST(NetFaultCampaign, InjectedExecutorFaultsBecomeErrorFrames) {
  NetCampaignOptions options;
  options.seed = 2;
  options.jobs_per_client = 48;
  options.tenants = 3;
  options.abusers = 2;
  options.storm_jobs = 16;
  options.plan.fail_every_batches = 4;  // every 4th batch throws
  const NetCampaignReport report = run_net_fault_campaign(options);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.client_failed, 0u)
      << "injected faults should surface as error frames, not hangs";
  EXPECT_GT(report.client_completed, 0u);
}

TEST(NetFaultCampaign, AllocFailuresUnderShedPolicy) {
  NetCampaignOptions options;
  options.seed = 3;
  options.jobs_per_client = 32;
  options.tenants = 3;
  options.abusers = 2;
  options.storm_jobs = 16;
  options.queue_capacity = 16;  // tight queue: overflow paths fire
  options.policy = serve::OverflowPolicy::kShedOldest;
  options.plan.alloc_fail_every_batches = 5;
  const NetCampaignReport report = run_net_fault_campaign(options);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace

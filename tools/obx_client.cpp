// obx_client — standalone load generator / probe for a running obx server.
//
// Where `obx_cli bench-net` stands up its own loopback server, this binary is
// the other half of a cross-host load test: point it at any obx server (e.g.
// `obx_cli serve --listen 0.0.0.0:9090` on another machine) and drive it.
//
//   obx_client --connect HOST:PORT [--algos a,b] [--n N | --sizes N1,N2]
//              [--jobs J] [--rate R] [--bursty] [--tenants T]
//              [--connections C] [--pipeline D] [--deadline-us U] [--seed S]
//              [--scrape]
//       multi-tenant open- or closed-loop load; prints the per-tenant ledger
//       and exits nonzero on any exactly-once violation or transport error.
//
//   obx_client --connect HOST:PORT --ping [--algos a] [--n N]
//       one job round-trip: prints status + latency; nonzero exit unless the
//       job completed.
//
// Inputs are generated client-side from the shared algorithm registry, so the
// server must have the same programs registered under the same ids (what
// `obx_cli serve` does for --algos/--n).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "net/client.hpp"
#include "net/load_gen.hpp"
#include "serve/job.hpp"
#include "serve/load_gen.hpp"

namespace {

using namespace obx;

int usage() {
  std::fprintf(stderr,
               "usage: obx_client --connect HOST:PORT [--ping] [--algos a,b] "
               "[--n N | --sizes N1,N2] "
               "[--jobs J] [--rate R] [--bursty] [--tenants T] "
               "[--connections C] [--pipeline D] [--deadline-us U] [--seed S] "
               "[--scrape]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// --sizes a,b,c mirrors `obx_cli serve --sizes`: variable-length sessions,
/// one per (algorithm, n).  Absent, --n keeps one bare-id session per algo.
std::vector<std::size_t> sizes_from(const cli::Args& args,
                                    std::int64_t fallback_n) {
  std::vector<std::size_t> sizes;
  std::string csv = args.get("sizes", "");
  for (const std::string& s : split_csv(csv)) {
    if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "--sizes entries must be positive integers: %s\n",
                   s.c_str());
      std::exit(2);
    }
    sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
  }
  if (sizes.empty()) {
    sizes.push_back(static_cast<std::size_t>(args.get_int("n", fallback_n)));
  }
  return sizes;
}

/// The client-side half of register_workload: input generators for program
/// ids the server is assumed to already serve (same id scheme — several
/// sizes address the server's "name/n=N" variable-length sessions).
std::vector<serve::WorkloadItem> make_workload(
    const std::vector<std::string>& algo_names,
    const std::vector<std::size_t>& sizes) {
  std::vector<serve::WorkloadItem> workload;
  for (const std::string& name : algo_names) {
    const algos::Algorithm& algo = algos::find(name);
    for (const std::size_t n : sizes) {
      const std::string id =
          sizes.size() == 1 ? name : name + "/n=" + std::to_string(n);
      workload.push_back(serve::WorkloadItem{
          .program_id = id,
          .make_input = [&algo, n](Rng& rng) { return algo.make_input(n, rng); }});
    }
  }
  return workload;
}

int cmd_ping(const std::string& host, std::uint16_t port, const cli::Args& args) {
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 256));
  const std::string name = split_csv(args.get("algos", "prefix-sums")).front();
  const algos::Algorithm& algo = algos::find(name);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  net::Client client(host, port);
  if (!client.connected()) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", host.c_str(), port,
                 client.error().c_str());
    return 1;
  }
  const net::Client::Result r = client.submit(name, algo.make_input(n, rng));
  if (!r.transport_error.empty()) {
    std::fprintf(stderr, "transport error: %s\n", r.transport_error.c_str());
    return 1;
  }
  if (r.error_code.has_value()) {
    std::fprintf(stderr, "server error: %s\n", r.error.c_str());
    return 1;
  }
  std::printf("ping %s:%u %s: status=%s latency=%lluus queue=%lluus "
              "batch-lanes=%u output-words=%zu\n",
              host.c_str(), port, name.c_str(), serve::to_string(r.status),
              static_cast<unsigned long long>(r.latency_us),
              static_cast<unsigned long long>(r.queue_delay_us), r.batch_lanes,
              r.output.size());
  return r.ok() ? 0 : 1;
}

int cmd_load(const std::string& host, std::uint16_t port, const cli::Args& args) {
  const std::vector<serve::WorkloadItem> workload = make_workload(
      split_csv(args.get("algos", "prefix-sums")), sizes_from(args, 256));
  const std::size_t tenant_count =
      static_cast<std::size_t>(args.get_int("tenants", 3));
  const unsigned connections =
      static_cast<unsigned>(args.get_int("connections", 2));

  static const serve::Priority kRotation[] = {serve::Priority::kHigh,
                                              serve::Priority::kNormal,
                                              serve::Priority::kLow};
  std::vector<net::NetTenantSpec> tenants;
  for (std::size_t t = 0; t < tenant_count; ++t) {
    tenants.push_back(net::NetTenantSpec{.name = "tenant-" + std::to_string(t),
                                         .priority = kRotation[t % 3],
                                         .weight = 1.0,
                                         .connections = connections});
  }

  net::NetLoadOptions load;
  load.jobs = static_cast<std::size_t>(args.get_int("jobs", 4000));
  load.arrival_rate_hz = args.get_double("rate", 0);
  load.bursty = args.get_bool("bursty");
  load.pipeline_depth = static_cast<std::size_t>(args.get_int("pipeline", 8));
  load.deadline_us = args.get_int("deadline-us", -1);
  load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::printf("obx_client -> %s:%u: %zu jobs, %zu tenants x %u connections, %s\n",
              host.c_str(), port, load.jobs, tenant_count, connections,
              load.arrival_rate_hz > 0
                  ? (format_fixed(load.arrival_rate_hz, 0) + "/s arrivals").c_str()
                  : "closed-loop");

  const net::NetLoadReport report =
      net::run_net_load(host, port, workload, tenants, load);

  analysis::Table table({"tenant", "submitted", "completed", "rejected", "shed",
                         "failed", "transport", "p50 us", "p95 us"});
  for (const net::NetTenantReport& t : report.tenants) {
    table.add_row({t.tenant, std::to_string(t.submitted),
                   std::to_string(t.completed), std::to_string(t.rejected),
                   std::to_string(t.shed), std::to_string(t.failed),
                   std::to_string(t.transport_errors),
                   format_fixed(t.p50_latency_us, 0),
                   format_fixed(t.p95_latency_us, 0)});
  }
  table.print(std::cout);
  std::printf("total: %zu jobs in %.2fs = %s jobs/s (completed=%zu rejected=%zu "
              "shed=%zu failed=%zu transport=%zu)\n",
              report.submitted, report.wall_seconds,
              format_fixed(report.jobs_per_sec, 0).c_str(), report.completed,
              report.rejected, report.shed, report.failed,
              report.transport_errors);

  bool ok = true;
  if (!report.exactly_once()) {
    std::printf("VIOLATION: ledger unbalanced\n");
    ok = false;
  }
  if (report.transport_errors != 0) {
    std::printf("VIOLATION: %zu transport errors\n", report.transport_errors);
    ok = false;
  }
  if (args.get_bool("scrape")) {
    net::Client scraper(host, port);
    std::printf("--- metrics scrape ---\n%s", scraper.scrape_stats().c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args = cli::Args::parse(
        argc, argv, {"bursty", "scrape", "ping"},
        {"connect", "algos", "n", "sizes", "jobs", "rate", "tenants",
         "connections", "pipeline", "deadline-us", "seed"});
    if (!args.has("connect")) return usage();
    const std::string connect = args.get("connect", "");
    const std::size_t colon = connect.rfind(':');
    if (colon == std::string::npos || colon + 1 >= connect.size()) {
      std::fprintf(stderr, "--connect expects HOST:PORT, got: %s\n",
                   connect.c_str());
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    const std::uint16_t port =
        static_cast<std::uint16_t>(std::stoi(connect.substr(colon + 1)));
    if (args.get_bool("ping")) return cmd_ping(host, port, args);
    return cmd_load(host, port, args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

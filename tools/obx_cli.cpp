// obx_cli — run, time, inspect and optimise the oblivious algorithm library
// from the command line.
//
//   obx_cli list     [--names]
//   obx_cli run      <algorithm> --n 64 --p 256 [--arrangement row|col|blocked|cf]
//                    [--arrangement-param B] [--workers K] [--seed S]
//   obx_cli plan     <algorithm> [--n N] [--p P] [--width 32] [--latency 200]
//                    [--group G] [--overlap] [--count-compute]
//                    [--banks 32] [--bank-words W] [--shared-latency L]
//                    [--arrangement row|col|blocked|cf] [--arrangement-param B]
//                    [--tune] [--tune-trials T] [--tune-lanes P]
//                    [--no-optimise] [--no-compile]
//                    (print the cached ExecutionPlan: decisions + provenance;
//                    --banks enables the shared/DMM tier, --tune refines the
//                    arrangement search with real micro-measurements)
//   obx_cli time     <algorithm> --n 64 --p 4096 [--width 32] [--latency 200]
//                    [--group G] [--overlap] [--model umm|dmm]
//                    [--banks 32] [--bank-words W] [--shared-latency L]
//                    (simulated units for all four arrangements)
//   obx_cli check    <algorithm> --n 64
//   obx_cli optimize <algorithm> --n 64
//   obx_cli hmm      <algorithm> --n 64 --p 4096 [--sms 14]
//   obx_cli dump     <algorithm> --n 8 [--optimize]   (.obx text to stdout)
//   obx_cli analyze  <algorithm> --n 64 --p 65536     (workload advice)
//   obx_cli serve-bench [--algos a,b] [--n 1024] [--jobs 30000] [--rate 40000]
//                    [--producers 8] [--batch-lanes 512] [--batch-delays-us 0,1000,5000]
//                    [--executors 1] [--policy block|reject|shed] [--queue-cap 2048]
//                    [--deadline-us D] [--snapshot]   (batching service load test;
//                    rate 0 = closed-loop)
//   obx_cli serve    --listen HOST:PORT [--algos a,b] [--n N | --sizes N1,N2]
//                    [--queue-cap C] [--policy block|reject|shed] [--executors E]
//                    [--batch-lanes L] [--batch-delay-us D]
//                    [--quota-rate R] [--quota-burst B] [--duration-s S]
//                    (network front end over the batching service; runs for
//                    --duration-s, or until stdin closes.  --sizes registers
//                    variable-length sessions, one "algo/n=N" id per size)
//   obx_cli bench-net [--algos a,b] [--n N | --sizes N1,N2] [--jobs J]
//                    [--rate R] [--bursty] [--tenants T] [--connections C]
//                    [--pipeline D] [--seed S] [--scrape]
//                    (loopback socket throughput vs the in-process service;
//                    nonzero exit on any exactly-once violation)
//   obx_cli fuzz     [--seed S] [--iters N] [--max-steps M] [--no-shrink]
//                    [--no-faults] [--no-net] | [--replay FILE]
//                    (differential fuzz of the backend/arrangement/SIMD matrix
//                    against the interpreter, plus serve fault-injection
//                    campaigns, protocol frame fuzz and a network fault
//                    campaign; --replay re-checks a saved reproducer)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "advisor/characterize.hpp"
#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "check/fault.hpp"
#include "check/fuzz.hpp"
#include "check/net_fault.hpp"
#include "common/cli.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "hmm/hmm_estimator.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "opt/optimizer.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "trace/interpreter.hpp"
#include "trace/oblivious_checker.hpp"
#include "trace/serialize.hpp"

namespace {

using namespace obx;

int usage() {
  std::fprintf(stderr,
               "usage: obx_cli <list|run|plan|time|check|optimize|hmm|analyze|dump|"
               "serve-bench|serve|bench-net|fuzz> [<algorithm>] [--n N] [--p P] "
               "[options]\n"
               "run 'obx_cli list' to see the algorithm library.\n");
  return 2;
}

const algos::Algorithm& algo_from(const cli::Args& args) {
  OBX_CHECK(args.positional().size() >= 2, "missing <algorithm>; try 'obx_cli list'");
  return algos::find(args.positional()[1]);
}

bulk::Arrangement arrangement_from(const cli::Args& args) {
  const std::string a = args.get("arrangement", "col");
  if (a == "row" || a == "row-wise") return bulk::Arrangement::kRowWise;
  if (a == "blocked" || a == "block") return bulk::Arrangement::kBlocked;
  if (a == "cf" || a == "conflict-free") return bulk::Arrangement::kConflictFree;
  OBX_CHECK(a == "col" || a == "column" || a == "column-wise",
            "unknown arrangement: " + a);
  return bulk::Arrangement::kColumnWise;
}

/// Shared-tier knobs: --banks enables the DMM tier (0 = off, the default);
/// --bank-words and --shared-latency refine it.
void apply_shared_tier(const cli::Args& args, umm::MachineConfig& cfg) {
  cfg.shared.banks = static_cast<std::uint32_t>(args.get_int("banks", 0));
  cfg.shared.bank_words = static_cast<std::uint32_t>(args.get_int("bank-words", 1));
  cfg.shared.latency = static_cast<std::uint32_t>(args.get_int("shared-latency", 1));
}

int cmd_list(const cli::Args& args) {
  if (args.get_bool("names")) {
    // Plain one-per-line mode for scripting (the golden-plan CI loop).
    for (const auto& algo : algos::registry()) std::printf("%s\n", algo.name.c_str());
    return 0;
  }
  analysis::Table table({"algorithm", "description", "t(n) example"});
  for (const auto& algo : algos::registry()) {
    const std::size_t n = algo.test_sizes.back();
    table.add_row({algo.name, algo.description,
                   "t(" + std::to_string(n) + ") = " +
                       std::to_string(algo.memory_steps(n))});
  }
  table.print(std::cout);
  return 0;
}

int cmd_run(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const std::size_t p = static_cast<std::size_t>(args.get_int("p", 64));
  const unsigned workers = static_cast<unsigned>(args.get_int("workers", 1));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  const trace::Program program = algo.make_program(n);
  std::vector<Word> inputs;
  inputs.reserve(p * program.input_words);
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algo.make_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  const bulk::Arrangement arr = arrangement_from(args);
  const std::size_t arr_param = static_cast<std::size_t>(args.get_int(
      "arrangement-param", arr == bulk::Arrangement::kBlocked ? 32 : 0));
  const auto t0 = std::chrono::steady_clock::now();
  const bulk::BulkOutputs out =
      bulk::run_bulk(program, inputs, p, arr, workers, arr_param);
  const auto t1 = std::chrono::steady_clock::now();

  // Verify every lane against the native reference.
  std::size_t failures = 0;
  for (std::size_t j = 0; j < p; ++j) {
    const auto expected = algo.reference(
        n, std::span<const Word>(inputs).subspan(j * program.input_words,
                                                 program.input_words));
    const auto got = out.output(j);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (got[i] != expected[i]) {
        ++failures;
        break;
      }
    }
  }
  std::printf("%s: p=%zu lanes, %zu output words each, host time %s\n",
              program.name.c_str(), p, out.words_per_output,
              format_seconds(std::chrono::duration<double>(t1 - t0).count()).c_str());
  std::printf("verification vs native reference: %zu/%zu lanes exact\n", p - failures, p);
  return failures == 0 ? 0 : 1;
}

// Builds (or fetches from the process-wide PlanCache) the ExecutionPlan for
// one registry program and prints its decisions, provenance and estimated
// units.  The output is deterministic across hosts — CI diffs it against
// tests/golden/plans/<algorithm>.txt.
int cmd_plan(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(
      args.get_int("n", static_cast<std::int64_t>(algo.test_sizes.back())));

  plan::PlanOptions options;
  options.machine.width = static_cast<std::uint32_t>(args.get_int("width", 32));
  options.machine.latency = static_cast<std::uint32_t>(args.get_int("latency", 200));
  options.machine.group_words = static_cast<std::uint32_t>(args.get_int("group", 0));
  options.machine.overlap_latency = args.get_bool("overlap");
  options.machine.count_compute = args.get_bool("count-compute");
  apply_shared_tier(args, options.machine);
  options.reference_lanes = static_cast<std::size_t>(args.get_int("p", 256));
  if (args.get_bool("no-optimise")) options.optimise = false;
  if (args.get_bool("no-compile")) options.compile = false;
  if (args.has("arrangement")) options.arrangement = arrangement_from(args);
  options.arrangement_param =
      static_cast<std::size_t>(args.get_int("arrangement-param", 0));
  options.tune.measure = args.get_bool("tune");
  options.tune.trials = static_cast<std::size_t>(args.get_int("tune-trials", 3));
  options.tune.lanes = static_cast<std::size_t>(args.get_int("tune-lanes", 0));

  const std::string id = algo.name + "/n=" + std::to_string(n);
  const std::shared_ptr<const plan::ExecutionPlan> plan =
      plan::PlanCache::process().get_or_build(id, algo.make_program(n), options);
  std::printf("%s", plan->describe().c_str());
  return 0;
}

int cmd_time(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const std::size_t p = static_cast<std::size_t>(args.get_int("p", 4096));
  umm::MachineConfig cfg;
  cfg.width = static_cast<std::uint32_t>(args.get_int("width", 32));
  cfg.latency = static_cast<std::uint32_t>(args.get_int("latency", 200));
  cfg.group_words = static_cast<std::uint32_t>(args.get_int("group", 0));
  cfg.overlap_latency = args.get_bool("overlap");
  cfg.count_compute = args.get_bool("count-compute");
  apply_shared_tier(args, cfg);
  const std::string model_name = args.get("model", "umm");
  const umm::Model model = model_name == "dmm" ? umm::Model::kDmm : umm::Model::kUmm;

  const trace::Program program = algo.make_program(n);
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  analysis::Table table({"arrangement", "time units", "seconds @837MHz"});
  const std::size_t cf_stride = umm::conflict_free_stride(cfg.shared);
  const std::pair<bulk::Arrangement, std::size_t> sweeps[] = {
      {bulk::Arrangement::kRowWise, 0},
      {bulk::Arrangement::kColumnWise, 0},
      {bulk::Arrangement::kBlocked, cfg.width},
      {bulk::Arrangement::kConflictFree, cf_stride}};
  for (const auto& [arr, param] : sweeps) {
    const bulk::Layout layout = bulk::make_layout(program, p, arr, param);
    const TimeUnits units = bulk::simulate_units(program, layout, model, cfg);
    table.add_row({layout.name(), std::to_string(units),
                   format_seconds(gpu.seconds_from_units(units))});
  }
  std::printf("%s on the %s, p=%zu, w=%u, l=%u%s%s:\n", program.name.c_str(),
              model == umm::Model::kUmm ? "UMM" : "DMM", p, cfg.width, cfg.latency,
              cfg.group_words != 0
                  ? (", g=" + std::to_string(cfg.group_words)).c_str()
                  : "",
              cfg.overlap_latency ? ", overlapped" : "");
  table.print(std::cout);
  return 0;
}

int cmd_check(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const trace::Program program = algo.make_program(n);
  const trace::StepCounts counts = program.profile();
  std::printf("%s: %llu loads, %llu stores, %llu alu, %llu imm (t = %llu)\n",
              program.name.c_str(), static_cast<unsigned long long>(counts.loads),
              static_cast<unsigned long long>(counts.stores),
              static_cast<unsigned long long>(counts.alu),
              static_cast<unsigned long long>(counts.imm),
              static_cast<unsigned long long>(counts.memory()));
  const auto report = trace::check_program(program, 3);
  std::printf("declared t(n) formula: %llu  (%s)\n",
              static_cast<unsigned long long>(algo.memory_steps(n)),
              algo.memory_steps(n) == counts.memory() ? "matches" : "MISMATCH");
  std::printf("oblivious: %s%s\n", report.oblivious ? "yes" : "NO",
              report.oblivious ? "" : (" — " + report.detail).c_str());
  return report.oblivious ? 0 : 1;
}

int cmd_optimize(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const opt::OptimizeResult r = opt::optimize(algo.make_program(n));
  std::printf("%s: %llu -> %llu total steps, t %llu -> %llu (%.1f%% fewer memory "
              "steps)\n",
              r.program.name.c_str(),
              static_cast<unsigned long long>(r.before.total()),
              static_cast<unsigned long long>(r.after.total()),
              static_cast<unsigned long long>(r.before.memory()),
              static_cast<unsigned long long>(r.after.memory()),
              100.0 * r.memory_step_reduction());
  for (const auto& rep : r.reports) {
    std::printf("  %-22s -%zu steps\n", rep.pass.c_str(), rep.removed);
  }
  return 0;
}

int cmd_hmm(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const std::size_t p = static_cast<std::size_t>(args.get_int("p", 4096));
  hmm::HmmConfig cfg = hmm::gtx_titan_hmm();
  cfg.num_sms = static_cast<std::uint32_t>(args.get_int("sms", cfg.num_sms));
  const hmm::HmmEstimator est(cfg);
  const trace::Program program = algo.make_program(n);
  if (!est.admissible(program)) {
    std::printf("%s does not fit in shared memory (%zu words > %zu)\n",
                program.name.c_str(), program.memory_words, cfg.shared_capacity_words);
    return 1;
  }
  const hmm::HmmTiming t = est.run(program, p);
  const TimeUnits global = est.global_only(program, p);
  std::printf("%s, p=%zu, %u SMs:\n", program.name.c_str(), p, cfg.num_sms);
  std::printf("  global-only : %llu units\n", static_cast<unsigned long long>(global));
  std::printf("  staged      : %llu units (copy %llu + compute %llu + copy %llu)\n",
              static_cast<unsigned long long>(t.total()),
              static_cast<unsigned long long>(t.copy_in),
              static_cast<unsigned long long>(t.compute),
              static_cast<unsigned long long>(t.copy_out));
  std::printf("  staged win  : %.2fx\n",
              static_cast<double>(global) / static_cast<double>(t.total()));
  return 0;
}

int cmd_analyze(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 64));
  const std::size_t p = static_cast<std::size_t>(args.get_int("p", 65536));
  umm::MachineConfig cfg = gpusim::gtx_titan().memory;
  cfg.width = static_cast<std::uint32_t>(args.get_int("width", cfg.width));
  cfg.latency = static_cast<std::uint32_t>(args.get_int("latency", cfg.latency));
  const hmm::HmmConfig hier = hmm::gtx_titan_hmm();
  const trace::Program program = algo.make_program(n);
  const advisor::Characterization c = advisor::characterize(program, p, cfg, &hier);
  std::printf("%s on w=%u l=%u:\n%s", program.name.c_str(), cfg.width, cfg.latency,
              c.summary().c_str());
  return 0;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Load-tests the batching bulk-execution service: fixed arrival pattern,
// sweep of max_batch_delay values.  The table shows the batching win — at a
// fixed rate, a larger delay produces fuller batches (occupancy column) and
// higher sustained jobs/sec, the service-level image of amortising the l·t
// latency floor of Theorem 2 across the lanes of one bulk run.
int cmd_serve_bench(const cli::Args& args) {
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 1024));
  const std::vector<std::string> algo_names =
      split_csv(args.get("algos", "prefix-sums"));
  std::vector<std::string> delay_strings =
      split_csv(args.get("batch-delays-us", "0,1000,5000"));

  serve::LoadGenOptions load;
  load.jobs = static_cast<std::size_t>(args.get_int("jobs", 30000));
  load.producers = static_cast<unsigned>(args.get_int("producers", 8));
  load.arrival_rate_hz = args.get_double("rate", 40000);
  load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("deadline-us")) {
    load.deadline = std::chrono::microseconds(args.get_int("deadline-us", 0));
  }

  std::printf("serve-bench: %zu jobs, %u producers, %s arrivals, policy=%s, "
              "batch-lanes=%lld, executors=%lld\n",
              load.jobs, load.producers,
              load.arrival_rate_hz > 0
                  ? (format_fixed(load.arrival_rate_hz, 0) + "/s Poisson").c_str()
                  : "closed-loop",
              args.get("policy", "block").c_str(),
              static_cast<long long>(args.get_int("batch-lanes", 512)),
              static_cast<long long>(args.get_int("executors", 1)));

  analysis::Table table({"delay_us", "jobs/s", "occ mean", "occ max", "p50 us",
                         "p95 us", "batches", "shed", "rejected", "ddl miss",
                         "sim units/batch"});
  for (const std::string& delay_str : delay_strings) {
    serve::ServiceOptions options;
    options.queue_capacity = static_cast<std::size_t>(args.get_int("queue-cap", 2048));
    options.policy = serve::overflow_policy_from(args.get("policy", "block"));
    options.batcher.max_batch_lanes =
        static_cast<std::size_t>(args.get_int("batch-lanes", 512));
    OBX_CHECK(!delay_str.empty() &&
                  delay_str.find_first_not_of("0123456789") == std::string::npos,
              "--batch-delays-us entries must be non-negative integers, got: " + delay_str);
    options.batcher.max_batch_delay = std::chrono::microseconds(std::stoll(delay_str));
    options.executors = static_cast<unsigned>(args.get_int("executors", 1));

    serve::BulkService service(options);
    std::vector<serve::WorkloadItem> workload;
    for (const std::string& name : algo_names) {
      const algos::Algorithm& algo = algos::find(name);
      service.register_program(name, algo.make_program(n));
      workload.push_back(serve::WorkloadItem{
          .program_id = name,
          .make_input = [&algo, n](Rng& rng) { return algo.make_input(n, rng); }});
    }

    const serve::LoadGenReport report = serve::run_load(service, workload, load);
    service.stop();
    const serve::MetricsSnapshot snap = service.snapshot();
    table.add_row({delay_str, format_fixed(report.jobs_per_sec, 0),
                   format_fixed(snap.mean_batch_occupancy, 1),
                   format_fixed(snap.max_batch_occupancy, 0),
                   format_fixed(report.p50_latency_us, 0),
                   format_fixed(report.p95_latency_us, 0),
                   std::to_string(snap.batches), std::to_string(snap.shed),
                   std::to_string(snap.rejected), std::to_string(snap.deadline_missed),
                   format_fixed(snap.mean_batch_sim_units, 0)});
    if (args.get_bool("snapshot")) {
      std::printf("--- delay %s us ---\n%s", delay_str.c_str(),
                  snap.to_string().c_str());
    }
  }
  table.print(std::cout);
  return 0;
}

serve::ServiceOptions service_options_from(const cli::Args& args) {
  serve::ServiceOptions options;
  options.queue_capacity =
      static_cast<std::size_t>(args.get_int("queue-cap", 2048));
  options.policy = serve::overflow_policy_from(args.get("policy", "block"));
  options.batcher.max_batch_lanes =
      static_cast<std::size_t>(args.get_int("batch-lanes", 512));
  options.batcher.max_batch_delay =
      std::chrono::microseconds(args.get_int("batch-delay-us", 1000));
  options.executors = static_cast<unsigned>(args.get_int("executors", 2));
  if (args.has("quota-rate")) {
    serve::TenantQuota quota;
    quota.rate_hz = args.get_double("quota-rate", 0);
    quota.burst = args.get_double("quota-burst", 0);
    options.default_quota = quota;
  }
  return options;
}

// --sizes a,b,c → variable-length sessions: one registered program per
// (algorithm, n).  Absent, --n (or `fallback_n`) keeps one session per
// algorithm under its bare name.
std::vector<std::size_t> sizes_from(const cli::Args& args,
                                    std::int64_t fallback_n) {
  std::vector<std::size_t> sizes;
  for (const std::string& s : split_csv(args.get("sizes", ""))) {
    OBX_CHECK(!s.empty() && s.find_first_not_of("0123456789") == std::string::npos,
              "--sizes entries must be positive integers, got: " + s);
    sizes.push_back(static_cast<std::size_t>(std::stoull(s)));
  }
  if (sizes.empty()) {
    sizes.push_back(static_cast<std::size_t>(args.get_int("n", fallback_n)));
  }
  return sizes;
}

std::vector<serve::WorkloadItem> register_workload(
    serve::BulkService& service, const std::vector<std::string>& algo_names,
    const std::vector<std::size_t>& sizes) {
  // With several sizes, each (algorithm, n) gets its own "name/n=N" session
  // id — distinct ids and the batcher's (program id, input length) group key
  // both guarantee a batch never mixes input lengths.
  std::vector<serve::WorkloadItem> workload;
  for (const std::string& name : algo_names) {
    const algos::Algorithm& algo = algos::find(name);
    for (const std::size_t n : sizes) {
      const std::string id =
          sizes.size() == 1 ? name : name + "/n=" + std::to_string(n);
      service.register_program(id, algo.make_program(n));
      workload.push_back(serve::WorkloadItem{
          .program_id = id,
          .make_input = [&algo, n](Rng& rng) { return algo.make_input(n, rng); }});
    }
  }
  return workload;
}

// Stands up the network front end over the batching service and serves until
// --duration-s elapses (or stdin closes, for interactive use).  Exits nonzero
// if the wire ledger ends unbalanced.
int cmd_serve(const cli::Args& args) {
  const std::string listen = args.get("listen", "127.0.0.1:0");
  const std::size_t colon = listen.rfind(':');
  OBX_CHECK(colon != std::string::npos && colon + 1 < listen.size(),
            "--listen expects HOST:PORT, got: " + listen);
  net::ServerOptions server_options;
  server_options.host = listen.substr(0, colon);
  server_options.port =
      static_cast<std::uint16_t>(std::stoi(listen.substr(colon + 1)));

  serve::BulkService service(service_options_from(args));
  const std::vector<std::size_t> sizes = sizes_from(args, 1024);
  const std::vector<std::string> algo_names =
      split_csv(args.get("algos", "prefix-sums,horner"));
  const std::size_t sessions =
      register_workload(service, algo_names, sizes).size();

  net::Server server(service, server_options);
  std::printf("listening on %s:%u — %zu sessions (%zu algos x %zu sizes), "
              "policy=%s\n",
              server.host().c_str(), server.port(), sessions,
              algo_names.size(), sizes.size(),
              args.get("policy", "block").c_str());
  std::fflush(stdout);

  const std::int64_t duration_s = args.get_int("duration-s", 0);
  if (duration_s > 0) {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
  } else {
    while (std::getchar() != EOF) {
    }
  }
  server.stop();
  service.stop();
  const net::ServerStatsSnapshot stats = server.stats();
  std::printf("%s", net::render_server_stats(stats).c_str());
  return stats.exactly_once() ? 0 : 1;
}

// Loopback socket throughput vs the same workload driven in-process: the
// wire adds framing + syscalls, so the gap between the two rows is the cost
// of the network front end itself.  Nonzero exit on any lost or double
// resolution on either path.
int cmd_bench_net(const cli::Args& args) {
  const std::vector<std::size_t> sizes = sizes_from(args, 256);
  const std::vector<std::string> algo_names =
      split_csv(args.get("algos", "prefix-sums"));
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 4000));
  const double rate = args.get_double("rate", 0);
  const std::size_t tenant_count =
      static_cast<std::size_t>(args.get_int("tenants", 3));
  const unsigned connections =
      static_cast<unsigned>(args.get_int("connections", 2));

  std::printf("bench-net: %zu jobs, %zu tenants x %u connections, %s\n", jobs,
              tenant_count, connections,
              rate > 0 ? (format_fixed(rate, 0) + "/s arrivals").c_str()
                       : "closed-loop");

  analysis::Table table(
      {"path", "jobs/s", "p50 us", "p95 us", "completed", "rejected", "shed"});
  bool ok = true;

  // Row 1: the same service driven in-process (no sockets, no framing).
  double inproc_jobs_per_sec = 0;
  {
    serve::BulkService service(service_options_from(args));
    const std::vector<serve::WorkloadItem> workload =
        register_workload(service, algo_names, sizes);
    serve::LoadGenOptions load;
    load.jobs = jobs;
    load.producers = static_cast<unsigned>(tenant_count) * connections;
    load.arrival_rate_hz = rate;
    load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const serve::LoadGenReport report = serve::run_load(service, workload, load);
    service.stop();
    inproc_jobs_per_sec = report.jobs_per_sec;
    table.add_row({"in-process", format_fixed(report.jobs_per_sec, 0),
                   format_fixed(report.p50_latency_us, 0),
                   format_fixed(report.p95_latency_us, 0),
                   std::to_string(report.completed),
                   std::to_string(report.rejected), std::to_string(report.shed)});
  }

  // Row 2: the same workload through net::Server on a loopback socket.
  {
    serve::BulkService service(service_options_from(args));
    const std::vector<serve::WorkloadItem> workload =
        register_workload(service, algo_names, sizes);
    net::Server server(service, net::ServerOptions{});

    static const serve::Priority kRotation[] = {serve::Priority::kHigh,
                                                serve::Priority::kNormal,
                                                serve::Priority::kLow};
    std::vector<net::NetTenantSpec> tenants;
    for (std::size_t t = 0; t < tenant_count; ++t) {
      tenants.push_back(net::NetTenantSpec{
          .name = "tenant-" + std::to_string(t),
          .priority = kRotation[t % 3],
          .weight = 1.0,
          .connections = connections});
    }
    net::NetLoadOptions load;
    load.jobs = jobs;
    load.arrival_rate_hz = rate;
    load.bursty = args.get_bool("bursty");
    load.pipeline_depth = static_cast<std::size_t>(args.get_int("pipeline", 8));
    load.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const net::NetLoadReport report = net::run_net_load(
        server.host(), server.port(), workload, tenants, load);
    server.stop();
    service.stop();
    const net::ServerStatsSnapshot stats = server.stats();
    table.add_row({"loopback", format_fixed(report.jobs_per_sec, 0),
                   format_fixed(report.tenants.empty()
                                    ? 0.0
                                    : report.tenants[0].p50_latency_us, 0),
                   format_fixed(report.tenants.empty()
                                    ? 0.0
                                    : report.tenants[0].p95_latency_us, 0),
                   std::to_string(report.completed),
                   std::to_string(report.rejected), std::to_string(report.shed)});
    if (!report.exactly_once()) {
      std::printf("VIOLATION: load ledger unbalanced: submitted=%zu "
                  "completed=%zu rejected=%zu shed=%zu failed=%zu transport=%zu\n",
                  report.submitted, report.completed, report.rejected,
                  report.shed, report.failed, report.transport_errors);
      ok = false;
    }
    if (report.transport_errors != 0) {
      std::printf("VIOLATION: %zu transport errors on loopback\n",
                  report.transport_errors);
      ok = false;
    }
    if (!stats.exactly_once()) {
      std::printf("VIOLATION: server ledger unbalanced: admitted=%llu "
                  "sent=%llu dropped=%llu\n",
                  static_cast<unsigned long long>(stats.submits_admitted),
                  static_cast<unsigned long long>(stats.responses_sent),
                  static_cast<unsigned long long>(stats.responses_dropped));
      ok = false;
    }
    if (inproc_jobs_per_sec > 0) {
      std::printf("loopback/in-process throughput ratio: %.2f\n",
                  report.jobs_per_sec / inproc_jobs_per_sec);
    }
    if (args.get_bool("scrape")) {
      std::printf("--- metrics scrape ---\n%s", server.scrape_metrics().c_str());
    }
  }
  table.print(std::cout);
  return ok ? 0 : 1;
}

// Differential fuzzing (check::run_fuzz) plus serve fault-injection
// campaigns (check::run_fault_campaign).  Deterministic in --seed; exits
// nonzero on any divergence or lifecycle violation, printing a ready-to-save
// reproducer and a ready-to-paste regression test for each failure.
int cmd_fuzz(const cli::Args& args) {
  if (args.has("replay")) {
    const std::string path = args.get("replay", "");
    std::ifstream in(path);
    OBX_CHECK(in.good(), "cannot open reproducer: " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const check::Reproducer repro = check::parse_reproducer(buffer.str());
    const auto divergence = check::replay_reproducer(repro);
    if (divergence.has_value()) {
      std::printf("%s: %s\n", path.c_str(), divergence->to_string().c_str());
      return 1;
    }
    std::printf("reproducer '%s': all configurations agree\n", path.c_str());
    return 0;
  }

  check::FuzzOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  options.iters = static_cast<std::size_t>(args.get_int("iters", 500));
  if (args.has("max-steps")) {
    options.gen.max_steps =
        static_cast<std::size_t>(args.get_int("max-steps", 360));
  }
  options.shrink = !args.get_bool("no-shrink");

  const check::FuzzReport report = check::run_fuzz(options);
  std::printf("%s\n", report.summary().c_str());
  for (const check::FuzzFailure& f : report.failures) {
    std::printf("\n=== iteration %llu: %s\n",
                static_cast<unsigned long long>(f.iteration),
                f.divergence.to_string().c_str());
    if (options.shrink) {
      std::printf("shrunk %zu -> %zu steps (%zu predicate calls%s)\n",
                  f.shrink.steps_before, f.shrink.steps_after,
                  f.shrink.predicate_calls,
                  f.shrink.budget_exhausted ? ", budget exhausted" : "");
    }
    std::printf("--- reproducer (save under tests/regressions/) ---\n%s",
                check::write_reproducer(f.reproducer).c_str());
    std::printf("--- regression test ---\n%s",
                check::regression_test_source(
                    f.reproducer, "Shrunk" + std::to_string(f.iteration))
                    .c_str());
  }

  bool faults_ok = true;
  if (!args.get_bool("no-faults")) {
    std::vector<std::pair<std::string, check::CampaignOptions>> campaigns;
    {
      check::CampaignOptions c;
      c.plan.fail_every_batches = 2;
      campaigns.emplace_back("executor-fault", c);
    }
    {
      check::CampaignOptions c;
      c.plan.alloc_fail_every_batches = 3;
      campaigns.emplace_back("alloc-fault", c);
    }
    {
      check::CampaignOptions c;
      c.service.queue_capacity = 4;
      c.service.policy = serve::OverflowPolicy::kShedOldest;
      c.service.executors = 1;
      c.plan.fail_every_batches = 3;
      campaigns.emplace_back("shed-storm", c);
    }
    {
      check::CampaignOptions c;
      c.service.queue_capacity = 4;
      c.service.policy = serve::OverflowPolicy::kReject;
      campaigns.emplace_back("reject-storm", c);
    }
    {
      check::CampaignOptions c;
      c.plan.fail_every_batches = 3;
      c.close_mid_stream = true;
      campaigns.emplace_back("mid-stream-close", c);
    }
    for (const auto& [name, campaign] : campaigns) {
      const check::CampaignReport r = check::run_fault_campaign(campaign);
      std::printf("fault %-16s %s\n", name.c_str(), r.summary().c_str());
      faults_ok = faults_ok && r.exactly_once();
    }
  }

  // Wire-level legs: the protocol codec under mutation, then the whole
  // serving path behind a real socket under abusive peers.
  bool net_ok = true;
  if (!args.get_bool("no-net")) {
    check::FrameFuzzOptions frame_options;
    frame_options.seed = options.seed;
    const check::FrameFuzzReport frames = check::run_frame_fuzz(frame_options);
    std::printf("%s\n", frames.summary().c_str());
    for (const std::string& v : frames.violations) {
      std::printf("  frame violation: %s\n", v.c_str());
    }
    net_ok = frames.ok();

    check::NetCampaignOptions net_options;
    net_options.seed = options.seed;
    net_options.plan.fail_every_batches = 4;
    const check::NetCampaignReport wire =
        check::run_net_fault_campaign(net_options);
    std::printf("%s\n", wire.summary().c_str());
    for (const std::string& v : wire.violations) {
      std::printf("  net violation: %s\n", v.c_str());
    }
    net_ok = net_ok && wire.ok();
  }
  return (report.ok() && faults_ok && net_ok) ? 0 : 1;
}

int cmd_dump(const cli::Args& args) {
  const algos::Algorithm& algo = algo_from(args);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 8));
  trace::Program program = algo.make_program(n);
  if (args.get_bool("optimize")) program = opt::optimize(program).program;
  trace::serialize_program(program, std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args = cli::Args::parse(
        argc, argv,
        {"overlap", "count-compute", "optimize", "snapshot", "names",
         "no-optimise", "no-compile", "no-shrink", "no-faults", "no-net",
         "bursty", "scrape", "tune"},
        {"n", "p", "width", "latency", "group", "banks", "bank-words",
         "shared-latency", "arrangement-param", "tune-trials", "tune-lanes",
         "model", "arrangement", "workers",
         "seed", "sms", "algos", "jobs", "rate", "producers", "batch-lanes",
         "batch-delays-us", "batch-delay-us", "executors", "policy", "queue-cap",
         "deadline-us", "iters", "max-steps", "replay", "listen", "duration-s",
         "quota-rate", "quota-burst", "tenants", "connections", "pipeline",
         "sizes"});
    if (args.positional().empty()) return usage();
    const std::string& cmd = args.positional()[0];
    if (cmd == "list") return cmd_list(args);
    if (cmd == "run") return cmd_run(args);
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "time") return cmd_time(args);
    if (cmd == "check") return cmd_check(args);
    if (cmd == "optimize") return cmd_optimize(args);
    if (cmd == "hmm") return cmd_hmm(args);
    if (cmd == "dump") return cmd_dump(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "serve-bench") return cmd_serve_bench(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "bench-net") return cmd_bench_net(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

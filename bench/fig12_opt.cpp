// Figure 12 — bulk optimal polygon triangulation (Algorithm OPT):
// computing time (panel 1) and GPU-over-CPU speedup (panel 2) for
// 8-gons, 64-gons and 512-gons, p = 64 ... cap.
//
// Same series and expected shape as Figure 11, with t = Θ(n³): the paper
// reports GPU row-wise ≈ 0.09 ms + 50.8p ns and column-wise ≈
// 0.032 ms + 2.11p ns for 8-gons, and a column-wise speedup above 150x for
// p >= 64K.
#include <cstdio>
#include <iostream>
#include <vector>

#include "algos/opt_triangulation.hpp"
#include "analysis/linear_fit.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;

struct Workload {
  std::size_t n;       ///< polygon vertices
  std::size_t max_p;   ///< paper's cap for this n
  std::size_t cpu_measured_cap;
};

void run_workload(const gpusim::VirtualGpu& gpu, const Workload& w) {
  const std::vector<std::size_t> ps = bench::p_sweep(w.max_p);
  const trace::Program program = algos::opt_program(w.n);
  std::printf("\n=== Figure 12: OPT, %zu-gons (t = %llu memory steps) ===\n", w.n,
              static_cast<unsigned long long>(algos::opt_memory_steps(w.n)));

  // One weight matrix reused for every sequential run (running time of the
  // oblivious DP is data-independent, so this does not bias the timing).
  Rng rng(2014);
  const std::vector<Word> input = algos::opt_random_input(w.n, rng);
  std::vector<double> c(w.n * w.n);
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = trace::as_f64(input[i]);
  volatile double sink = 0.0;
  auto run_batch = [&](std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) sink = sink + algos::opt_native(w.n, c);
  };
  const bench::CpuSeries cpu = bench::cpu_series(ps, w.cpu_measured_cap, run_batch);

  std::vector<double> xs, row_s, col_s;
  analysis::Table table({"p", "CPU", "GPU row-wise", "GPU col-wise", "row units",
                         "col units", "speedup row", "speedup col"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t p = ps[i];
    const TimeUnits row_units =
        gpu.estimate_units(program, p, bulk::Arrangement::kRowWise);
    const TimeUnits col_units =
        gpu.estimate_units(program, p, bulk::Arrangement::kColumnWise);
    const double row_sec = gpu.seconds_from_units(row_units);
    const double col_sec = gpu.seconds_from_units(col_units);
    xs.push_back(static_cast<double>(p));
    row_s.push_back(row_sec);
    col_s.push_back(col_sec);
    table.add_row({format_count(p) + (cpu.extrapolated[i] ? "*" : ""),
                   format_seconds(cpu.seconds[i]), format_seconds(row_sec),
                   format_seconds(col_sec), std::to_string(row_units),
                   std::to_string(col_units),
                   format_fixed(cpu.seconds[i] / row_sec, 1),
                   format_fixed(cpu.seconds[i] / col_sec, 1)});
  }
  table.print(std::cout);
  bench::save_table(table, "fig12_opt_n" + std::to_string(w.n));

  const analysis::LinearFit row_fit = analysis::fit_linear_tail(xs, row_s);
  const analysis::LinearFit col_fit = analysis::fit_linear_tail(xs, col_s);
  std::printf("fit: GPU row-wise ~ %s   (paper, 8-gons: 0.09 ms + 50.8 ns * p)\n",
              analysis::describe_fit_seconds(row_fit).c_str());
  std::printf("fit: GPU col-wise ~ %s   (paper, 8-gons: 0.032 ms + 2.11 ns * p)\n",
              analysis::describe_fit_seconds(col_fit).c_str());
  if (col_fit.slope > 0) {
    std::printf("asymptotic row/col slope ratio: %.1f (machine width w = %u)\n",
                row_fit.slope / col_fit.slope, gpu.spec().memory.width);
  }
  std::printf("max column-wise speedup over CPU: %.0fx\n",
              analysis::max_value(analysis::speedup(cpu.seconds, col_s)));
}

}  // namespace

int main() {
  const gpusim::VirtualGpu gpu{gpusim::gtx_titan()};
  std::printf("Reproduction of Figure 12 (computing time and speedup of bulk\n"
              "Algorithm OPT) on the virtual GTX Titan (w=%u, l=%u, %.0f MHz).\n",
              gpu.spec().memory.width, gpu.spec().memory.latency,
              gpu.spec().clock_hz / 1e6);
  // Paper caps: 4M for 8-gons, 64K for 64-gons, 1K for 512-gons.
  run_workload(gpu, {.n = 8, .max_p = 4u << 20, .cpu_measured_cap = 1u << 15});
  run_workload(gpu, {.n = 64, .max_p = 64u << 10, .cpu_measured_cap = 1u << 9});
  run_workload(gpu, {.n = 512, .max_p = 1u << 10, .cpu_measured_cap = 2});
  return 0;
}

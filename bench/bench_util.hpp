// Shared helpers for the figure benches.
//
// Conventions (mirroring the paper's Section V):
//  - p sweeps are geometric: 64, 128, ..., up to a per-workload cap.
//  - The "CPU" series is the native sequential algorithm executed p times on
//    this host's CPU (row-wise data, like the paper).  Because the CPU time
//    is exactly linear in p (the paper: "the computing time of the CPU is
//    linear to p"), large p values are extrapolated from a measured
//    per-input time; extrapolated rows are marked with '*'.
//  - The "GPU" series are simulated UMM time units converted to seconds with
//    the virtual GTX-Titan clock (see DESIGN.md §2 for the substitution).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "analysis/table.hpp"

namespace obx::bench {

/// Geometric sweep 64, 128, ..., <= max_p.
inline std::vector<std::size_t> p_sweep(std::size_t max_p) {
  std::vector<std::size_t> ps;
  for (std::size_t p = 64; p <= max_p; p *= 2) ps.push_back(p);
  return ps;
}

/// Wall-clock seconds of one invocation of `fn`.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median-of-3 wall-clock seconds.
inline double time_median3(const std::function<void()>& fn) {
  double a = time_once(fn), b = time_once(fn), c = time_once(fn);
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  return b;
}

/// CPU baseline: measured for p <= measured_cap, linear-extrapolated above.
struct CpuSeries {
  std::vector<double> seconds;       ///< one entry per sweep point
  std::vector<bool> extrapolated;    ///< true where linearly extended
  double per_input = 0.0;            ///< measured seconds per input
};

/// run_batch(count) must execute the native algorithm on `count` fresh
/// inputs and is timed directly at each measured sweep point.
inline CpuSeries cpu_series(const std::vector<std::size_t>& ps, std::size_t measured_cap,
                            const std::function<void(std::size_t)>& run_batch) {
  CpuSeries out;
  double last_measured_p = 0.0;
  double last_measured_t = 0.0;
  if (!ps.empty() && ps.front() > measured_cap && measured_cap > 0) {
    // Every sweep point exceeds the measurement budget: anchor the linear
    // extrapolation with one measurement at the cap itself.
    last_measured_p = static_cast<double>(measured_cap);
    last_measured_t = time_median3([&] { run_batch(measured_cap); });
  }
  for (std::size_t p : ps) {
    if (p <= measured_cap) {
      const double t = time_median3([&] { run_batch(p); });
      out.seconds.push_back(t);
      out.extrapolated.push_back(false);
      last_measured_p = static_cast<double>(p);
      last_measured_t = t;
    } else {
      out.seconds.push_back(last_measured_t * static_cast<double>(p) / last_measured_p);
      out.extrapolated.push_back(true);
    }
  }
  if (last_measured_p > 0) out.per_input = last_measured_t / last_measured_p;
  return out;
}

/// Writes `table` to bench_results/<name>.csv (directory created on demand);
/// set OBX_NO_CSV=1 to disable.
inline void save_table(const analysis::Table& table, const std::string& name) {
  if (std::getenv("OBX_NO_CSV") != nullptr) return;
  std::filesystem::create_directories("bench_results");
  table.save_csv("bench_results/" + name + ".csv");
}

}  // namespace obx::bench

// Ablation: transaction granularity.  The pure UMM predicts a row/column
// ratio of w = 32; the paper *measures* ~6 on the GTX Titan.  The gap is the
// DRAM transaction size: the Titan coalesces at 32-byte granularity (8 fp32
// words), so a fully scattered warp wastes ~8x bandwidth, not 32x.  Sweeping
// group_words reproduces the measured ratio at g = 8.
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "analysis/linear_fit.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 64;
  const trace::Program program = algos::prefix_sums_program(n);

  std::printf("Transaction-granularity ablation: bulk prefix-sums, n = %zu,\n"
              "w = 32, l = 200.  group_words = words per memory transaction.\n\n",
              n);
  analysis::Table table({"group_words", "row slope (units/p)", "col slope (units/p)",
                         "row/col", "paper's measured ratio"});
  for (const std::uint32_t g : {32u, 16u, 8u, 4u, 1u}) {
    umm::MachineConfig cfg{.width = 32, .latency = 200};
    cfg.group_words = g;
    std::vector<double> xs, row_u, col_u;
    for (std::size_t p : bench::p_sweep(1 << 20)) {
      auto units = [&](bulk::Arrangement arr) {
        return static_cast<double>(
            bulk::TimingEstimator(umm::Model::kUmm, cfg,
                                  bulk::make_layout(program, p, arr))
                .run(program)
                .time_units);
      };
      xs.push_back(static_cast<double>(p));
      row_u.push_back(units(bulk::Arrangement::kRowWise));
      col_u.push_back(units(bulk::Arrangement::kColumnWise));
    }
    const double row_slope = analysis::fit_linear_tail(xs, row_u).slope;
    const double col_slope = analysis::fit_linear_tail(xs, col_u).slope;
    table.add_row({std::to_string(g), format_fixed(row_slope, 4),
                   format_fixed(col_slope, 4), format_fixed(row_slope / col_slope, 1),
                   g == 8 ? "~6 (8.09/1.35 ns)" : ""});
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_transaction");
  std::printf("\nAt g = w = 32 (the paper's theoretical UMM) the ratio is w; at\n"
              "g = 8 (the Titan's 32-byte transactions over fp32) it matches the\n"
              "paper's measured ~6x; at g = 1 coalescing cannot matter at all.\n");
  return 0;
}

// Figure 11 revisited with the realistic-GPU extensions enabled.
//
// The pure UMM (the paper's theory) serialises latency between dependent
// steps and coalesces at full-warp granularity; a physical Titan overlaps
// latency across warps and coalesces at 32-byte transactions.  With
// group_words = 8 and overlap_latency = true, the simulated machine
// reproduces the two features of the measured Figure 11 that the pure model
// misses: row-wise GPU beating the CPU, and a row/col ratio near the
// measured ~6 instead of w = 32.
#include <cstdio>
#include <iostream>
#include <vector>

#include "algos/prefix_sums.hpp"
#include "analysis/linear_fit.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 32;
  const std::size_t max_p = 8u << 20;
  const std::size_t cpu_cap = 1u << 18;

  gpusim::GpuSpec spec = gpusim::gtx_titan();
  spec.memory.group_words = 8;      // 32-byte transactions over fp32
  spec.memory.overlap_latency = true;  // warps hide each other's latency
  const gpusim::VirtualGpu gpu(spec);

  std::printf("Figure 11 with realistic-GPU extensions (n = %zu, w = %u, l = %u,\n"
              "g = %u, latency overlapped):\n\n",
              n, spec.memory.width, spec.memory.latency, spec.memory.group_words);

  const std::vector<std::size_t> ps = bench::p_sweep(max_p);
  const trace::Program program = algos::prefix_sums_program(n);

  Rng rng(2014);
  std::vector<double> cpu_buffer(cpu_cap * n);
  for (double& v : cpu_buffer) v = rng.next_double(-100, 100);
  const bench::CpuSeries cpu = bench::cpu_series(ps, cpu_cap, [&](std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      algos::prefix_sums_native(std::span<double>(cpu_buffer.data() + j * n, n));
    }
  });

  analysis::Table table(
      {"p", "CPU", "GPU row-wise", "GPU col-wise", "speedup row", "speedup col"});
  std::vector<double> xs, row_s, col_s;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t p = ps[i];
    const double row = gpu.estimate_seconds(program, p, bulk::Arrangement::kRowWise);
    const double col = gpu.estimate_seconds(program, p, bulk::Arrangement::kColumnWise);
    xs.push_back(static_cast<double>(p));
    row_s.push_back(row);
    col_s.push_back(col);
    table.add_row({format_count(p) + (cpu.extrapolated[i] ? "*" : ""),
                   format_seconds(cpu.seconds[i]), format_seconds(row),
                   format_seconds(col), format_fixed(cpu.seconds[i] / row, 1),
                   format_fixed(cpu.seconds[i] / col, 1)});
  }
  table.print(std::cout);
  bench::save_table(table, "fig11_realistic");

  const auto row_fit = analysis::fit_linear_tail(xs, row_s);
  const auto col_fit = analysis::fit_linear_tail(xs, col_s);
  std::printf("\nfit: row-wise ~ %s   (paper measured: 37 us + 8.09 ns * p)\n",
              analysis::describe_fit_seconds(row_fit).c_str());
  std::printf("fit: col-wise ~ %s   (paper measured: 14 us + 1.35 ns * p)\n",
              analysis::describe_fit_seconds(col_fit).c_str());
  std::printf("row/col slope ratio: %.1f   (paper measured ~6; pure UMM predicts 32)\n",
              row_fit.slope / col_fit.slope);

  // This host's CPU is much faster per element than the paper's 2013 Core
  // i7 (~6.4 ns/element, derived from the paper's >150x column speedup at
  // its own Titan throughput).  Normalising the CPU to that era shows the
  // sign of the row-wise comparison the paper reports.
  const double ns_per_element = cpu.per_input / static_cast<double>(n) * 1e9;
  const double era = 6.4 / ns_per_element;
  std::printf("this CPU: %.2f ns/element -> era factor vs 2013 i7: %.1fx\n",
              ns_per_element, era);
  std::printf("row-wise vs CPU at p = %s: %.1fx measured, %.1fx era-normalised "
              "(paper: > 1)\n",
              format_count(ps.back()).c_str(), cpu.seconds.back() / row_s.back(),
              era * cpu.seconds.back() / row_s.back());
  std::printf("col-wise vs CPU at p = %s: %.1fx measured, %.1fx era-normalised "
              "(paper: > 150)\n",
              format_count(ps.back()).c_str(), cpu.seconds.back() / col_s.back(),
              era * cpu.seconds.back() / col_s.back());
  return 0;
}

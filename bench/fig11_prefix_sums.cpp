// Figure 11 — bulk prefix-sums: computing time (panel 1) and GPU-over-CPU
// speedup (panel 2) for n ∈ {32, 1K, 32K} and p = 64 ... cap.
//
// Series:
//   CPU          — native sequential prefix-sums run p times on this host
//                  ('*' rows extrapolated from the measured per-input time).
//   GPU row/col  — simulated UMM time units on the virtual GTX Titan, for
//                  the row-wise and column-wise arrangements.
//
// Expected shape (paper): CPU linear in p; both GPU curves flat (the l·t
// floor) until p fills the machine, then linear; column-wise beating
// row-wise by a factor approaching w; column-wise speedup over the CPU
// saturating above 100x.
#include <cstdio>
#include <vector>

#include "algos/prefix_sums.hpp"
#include "analysis/linear_fit.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"

#include <iostream>

namespace {

using namespace obx;

struct Workload {
  std::size_t n;
  std::size_t max_p;
  std::size_t cpu_measured_cap;
};

void run_workload(const gpusim::VirtualGpu& gpu, const Workload& w) {
  const std::vector<std::size_t> ps = bench::p_sweep(w.max_p);
  const trace::Program program = algos::prefix_sums_program(w.n);

  // CPU baseline buffer: one row per measured input.
  Rng rng(2014);
  std::vector<double> cpu_buffer(w.cpu_measured_cap * w.n);
  for (double& v : cpu_buffer) v = rng.next_double(-100, 100);
  auto run_batch = [&](std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      algos::prefix_sums_native(
          std::span<double>(cpu_buffer.data() + j * w.n, w.n));
    }
  };
  const bench::CpuSeries cpu = bench::cpu_series(ps, w.cpu_measured_cap, run_batch);

  std::vector<double> xs, row_s, col_s;
  analysis::Table table({"p", "CPU", "GPU row-wise", "GPU col-wise", "row units",
                         "col units", "speedup row", "speedup col"});
  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t p = ps[i];
    const TimeUnits row_units =
        gpu.estimate_units(program, p, bulk::Arrangement::kRowWise);
    const TimeUnits col_units =
        gpu.estimate_units(program, p, bulk::Arrangement::kColumnWise);
    const double row_sec = gpu.seconds_from_units(row_units);
    const double col_sec = gpu.seconds_from_units(col_units);
    xs.push_back(static_cast<double>(p));
    row_s.push_back(row_sec);
    col_s.push_back(col_sec);
    table.add_row({format_count(p) + (cpu.extrapolated[i] ? "*" : ""),
                   format_seconds(cpu.seconds[i]), format_seconds(row_sec),
                   format_seconds(col_sec), std::to_string(row_units),
                   std::to_string(col_units),
                   format_fixed(cpu.seconds[i] / row_sec, 1),
                   format_fixed(cpu.seconds[i] / col_sec, 1)});
  }
  std::printf("\n=== Figure 11: prefix-sums, n = %s ===\n", format_count(w.n).c_str());
  table.print(std::cout);
  bench::save_table(table, "fig11_prefix_sums_n" + std::to_string(w.n));

  const analysis::LinearFit row_fit = analysis::fit_linear_tail(xs, row_s);
  const analysis::LinearFit col_fit = analysis::fit_linear_tail(xs, col_s);
  std::printf("fit: GPU row-wise ~ %s   (paper, n=32: 37 us + 8.09 ns * p)\n",
              analysis::describe_fit_seconds(row_fit).c_str());
  std::printf("fit: GPU col-wise ~ %s   (paper, n=32: 14 us + 1.35 ns * p)\n",
              analysis::describe_fit_seconds(col_fit).c_str());
  if (col_fit.slope > 0) {
    std::printf("asymptotic row/col slope ratio: %.1f (machine width w = %u)\n",
                row_fit.slope / col_fit.slope, gpu.spec().memory.width);
  }
  const auto speed_col = analysis::speedup(cpu.seconds, col_s);
  std::printf("max column-wise speedup over CPU: %.0fx\n",
              analysis::max_value(speed_col));
}

}  // namespace

int main() {
  const gpusim::VirtualGpu gpu{gpusim::gtx_titan()};
  std::printf("Reproduction of Figure 11 (computing time and speedup of bulk\n"
              "prefix-sums) on the virtual GTX Titan (w=%u, l=%u, %.0f MHz).\n",
              gpu.spec().memory.width, gpu.spec().memory.latency,
              gpu.spec().clock_hz / 1e6);
  // Paper caps: 8M for n=32, 256K for n=1K, 8K for n=32K (memory limits).
  run_workload(gpu, {.n = 32, .max_p = 8u << 20, .cpu_measured_cap = 1u << 18});
  run_workload(gpu, {.n = 1024, .max_p = 256u << 10, .cpu_measured_cap = 1u << 13});
  run_workload(gpu, {.n = 32768, .max_p = 8u << 10, .cpu_measured_cap = 1u << 8});
  return 0;
}

// Ablation: closed-form theory vs cycle-accurate simulation.
//
// Three layers must agree:
//   1. the paper's formulas (Lemma 1 / Theorem 2),
//   2. the O(1)-per-step TimingEstimator, and
//   3. the full per-request UmmBulkExecutor simulation.
// 2 and 3 are asserted equal by the test suite; this bench reports the
// relative error of layer 1 against layer 3 across configurations, i.e. how
// tight the paper's asymptotic analysis is on the exact machine.
#include <cstdio>
#include <iostream>
#include <vector>

#include "algos/prefix_sums.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "umm/cost_model.hpp"

int main() {
  using namespace obx;
  std::printf("Theory vs simulation: bulk prefix-sums, exact machine vs the\n"
              "paper's Lemma 1 formulas.\n\n");

  analysis::Table table({"n", "p", "w", "l", "arrangement", "simulated",
                         "Lemma 1", "rel err"});
  Rng rng(5);
  for (const std::size_t n : {16u, 64u, 256u}) {
    const trace::Program program = algos::prefix_sums_program(n);
    for (const std::size_t p : {64u, 192u, 1024u}) {
      // Functional inputs for the full simulator run.
      std::vector<Word> inputs;
      for (std::size_t j = 0; j < p; ++j) {
        const auto one = algos::prefix_sums_random_input(n, rng);
        inputs.insert(inputs.end(), one.begin(), one.end());
      }
      for (const std::uint32_t w : {8u, 32u}) {
        for (const std::uint32_t l : {4u, 64u}) {
          const umm::MachineConfig cfg{.width = w, .latency = l};
          for (const auto arr :
               {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
            const bulk::Layout layout = bulk::make_layout(program, p, arr);
            const auto sim =
                bulk::UmmBulkExecutor(umm::Model::kUmm, cfg, layout).run(program, inputs);
            const TimeUnits formula = arr == bulk::Arrangement::kRowWise
                                          ? umm::lemma1_row_wise(n, p, cfg)
                                          : umm::lemma1_column_wise(n, p, cfg);
            const double err = analysis::relative_error(
                static_cast<double>(formula), static_cast<double>(sim.time_units));
            table.add_row({std::to_string(n), std::to_string(p), std::to_string(w),
                           std::to_string(l), to_string(arr),
                           std::to_string(sim.time_units), std::to_string(formula),
                           format_fixed(err, 4)});
          }
        }
      }
    }
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_theory_vs_sim");
  std::printf("\nExpected: zero error when p is a multiple of w and n >= w (the\n"
              "formulas' assumptions); small rounding error otherwise.\n");
  return 0;
}

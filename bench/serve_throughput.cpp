// Serve-layer ablation: arrival rate × max_batch_delay.
//
// Sweeps the batching service's central knob against offered load and prints
// sustained jobs/sec, mean batch occupancy, and latency quantiles.  The
// expected shape is the service-level image of Theorem 2's cost split: one
// bulk run of B lanes costs roughly F + c·B host-side (F = per-batch fixed
// work — the l·t analog — and c = per-lane marginal work), so sustained
// throughput is B/(F + c·B): it saturates at 1/c as occupancy grows, and at
// delay 0 (occupancy 1) it is stuck at 1/(F + c).  Above the unbatched
// capacity, raising max_batch_delay converts queueing delay into occupancy
// and multiplies throughput; below it, batching only adds bounded latency.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "common/format.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "bench_util.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 1024;
  const std::size_t jobs_per_cell = 12000;
  const algos::Algorithm& algo = algos::find("prefix-sums");

  std::printf("serve throughput sweep: prefix-sums n=%zu, %zu jobs/cell, "
              "8 producers, 1 executor, batch-lanes 512, policy block\n\n",
              n, jobs_per_cell);

  analysis::Table table({"rate/s", "delay_us", "jobs/s", "occ mean", "batches",
                         "p50 us", "p95 us", "sim units/batch"});
  for (const double rate : {10000.0, 20000.0, 40000.0}) {
    for (const long long delay_us : {0LL, 500LL, 2000LL, 8000LL}) {
      serve::ServiceOptions options;
      options.queue_capacity = 2048;
      options.policy = serve::OverflowPolicy::kBlock;
      options.batcher.max_batch_lanes = 512;
      options.batcher.max_batch_delay = std::chrono::microseconds(delay_us);
      options.executors = 1;

      serve::BulkService service(options);
      service.register_program(algo.name, algo.make_program(n));
      const std::vector<serve::WorkloadItem> workload{serve::WorkloadItem{
          .program_id = algo.name,
          .make_input = [&](Rng& rng) { return algo.make_input(n, rng); }}};

      serve::LoadGenOptions load;
      load.jobs = jobs_per_cell;
      load.producers = 8;
      load.arrival_rate_hz = rate;
      const serve::LoadGenReport report = serve::run_load(service, workload, load);
      service.stop();
      const serve::MetricsSnapshot snap = service.snapshot();

      table.add_row({format_fixed(rate, 0), std::to_string(delay_us),
                     format_fixed(report.jobs_per_sec, 0),
                     format_fixed(snap.mean_batch_occupancy, 1),
                     std::to_string(snap.batches),
                     format_fixed(report.p50_latency_us, 0),
                     format_fixed(report.p95_latency_us, 0),
                     format_fixed(snap.mean_batch_sim_units, 0)});
    }
  }
  table.print(std::cout);
  bench::save_table(table, "serve_throughput");
  return 0;
}

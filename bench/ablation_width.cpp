// Ablation: memory width w.  Theorem 2 predicts the column-wise time's
// bandwidth term scales as 1/w while the row-wise term is width-independent;
// this sweep shows the coalescing advantage is exactly the machine width.
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 64;
  const std::size_t p = 1 << 15;
  const std::uint32_t latency = 8;  // small l so the bandwidth term dominates
  const trace::Program program = algos::prefix_sums_program(n);

  std::printf("Width ablation: bulk prefix-sums, n = %zu, p = %s, l = %u.\n\n", n,
              format_count(p).c_str(), latency);
  analysis::Table table(
      {"w", "row units", "col units", "row/col", "col * w (flatness check)"});
  for (std::uint32_t w = 1; w <= 128; w *= 2) {
    const umm::MachineConfig cfg{.width = w, .latency = latency};
    const auto row = bulk::TimingEstimator(
                         umm::Model::kUmm, cfg,
                         bulk::make_layout(program, p, bulk::Arrangement::kRowWise))
                         .run(program);
    const auto col = bulk::TimingEstimator(
                         umm::Model::kUmm, cfg,
                         bulk::make_layout(program, p, bulk::Arrangement::kColumnWise))
                         .run(program);
    table.add_row({std::to_string(w), std::to_string(row.time_units),
                   std::to_string(col.time_units),
                   format_fixed(static_cast<double>(row.time_units) /
                                    static_cast<double>(col.time_units),
                                1),
                   std::to_string(col.time_units * w)});
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_width");
  std::printf("\nExpected: row units independent of w; col units ~ 2np/w so the\n"
              "'col * w' column is nearly constant and row/col approaches w.\n");
  return 0;
}

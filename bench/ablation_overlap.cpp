// Ablation: latency overlap (memory-level parallelism).  The paper's UMM
// drains the pipeline between a thread's consecutive accesses, paying
// (stages + l - 1) per step; a real GPU keeps the pipeline full with warps
// of other threads.  The overlap machine pays max(total stages, l*t) — it
// achieves Theorem 3's lower bound and removes the latency floor at small p.
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "umm/cost_model.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 64;
  const trace::Program program = algos::prefix_sums_program(n);
  const std::uint64_t t = algos::prefix_sums_memory_steps(n);

  std::printf("Latency-overlap ablation: bulk prefix-sums, n = %zu, w = 32,\n"
              "l = 200, column-wise arrangement.\n\n",
              n);
  analysis::Table table({"p", "serialized", "overlap", "Theorem 3 bound",
                         "overlap/bound", "serialized/overlap"});
  for (std::size_t p : bench::p_sweep(1 << 22)) {
    umm::MachineConfig serial{.width = 32, .latency = 200};
    umm::MachineConfig overlap = serial;
    overlap.overlap_latency = true;
    const bulk::Layout layout = bulk::Layout::column_wise(p, n);
    const TimeUnits ts =
        bulk::TimingEstimator(umm::Model::kUmm, serial, layout).run(program).time_units;
    const TimeUnits to =
        bulk::TimingEstimator(umm::Model::kUmm, overlap, layout).run(program).time_units;
    const TimeUnits bound = umm::theorem3_lower_bound(t, p, serial);
    table.add_row({format_count(p), std::to_string(ts), std::to_string(to),
                   std::to_string(bound),
                   format_fixed(static_cast<double>(to) / static_cast<double>(bound), 3),
                   format_fixed(static_cast<double>(ts) / static_cast<double>(to), 2)});
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_overlap");
  std::printf("\nExpected: overlap/bound -> 1 (the overlap machine is exactly\n"
              "lower-bound optimal); the serialized model overpays most in the\n"
              "transition region where neither term dominates.\n");
  return 0;
}

// Ablation: compute charging.  The paper's model charges local computation
// zero time; real kernels are not free.  With count_compute enabled, the
// register-heavy TEA cipher becomes compute-bound and the arrangement stops
// mattering — while memory-bound prefix-sums barely notices.
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "algos/tea_cipher.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"

namespace {

using namespace obx;

void report(analysis::Table& table, const char* name, const trace::Program& program,
            std::size_t p, bool count_compute) {
  umm::MachineConfig cfg{.width = 32, .latency = 16};
  cfg.count_compute = count_compute;
  const auto row = bulk::TimingEstimator(
                       umm::Model::kUmm, cfg,
                       bulk::make_layout(program, p, bulk::Arrangement::kRowWise))
                       .run(program);
  const auto col = bulk::TimingEstimator(
                       umm::Model::kUmm, cfg,
                       bulk::make_layout(program, p, bulk::Arrangement::kColumnWise))
                       .run(program);
  table.add_row({name, count_compute ? "yes" : "no", std::to_string(row.time_units),
                 std::to_string(col.time_units),
                 format_fixed(static_cast<double>(row.time_units) /
                                  static_cast<double>(col.time_units),
                              2),
                 std::to_string(col.compute_steps)});
}

}  // namespace

int main() {
  using namespace obx;
  const std::size_t p = 1 << 14;
  std::printf("Compute-charging ablation, p = %s, w = 32, l = 16.\n\n",
              format_count(p).c_str());
  analysis::Table table({"algorithm", "compute charged", "row units", "col units",
                         "row/col", "compute steps"});
  const trace::Program prefix = algos::prefix_sums_program(256);
  const trace::Program tea = algos::tea_program(8);
  report(table, "prefix-sums(256)", prefix, p, false);
  report(table, "prefix-sums(256)", prefix, p, true);
  report(table, "tea(8 blocks)", tea, p, false);
  report(table, "tea(8 blocks)", tea, p, true);
  table.print(std::cout);
  bench::save_table(table, "ablation_compute");
  std::printf("\nExpected: TEA's row/col advantage collapses toward 1 when its\n"
              "~700 register steps per block are charged; prefix-sums (2 memory\n"
              "steps per element) is barely affected.\n");
  return 0;
}

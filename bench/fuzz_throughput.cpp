// Fuzz-harness throughput: programs/sec and matrix configs/sec of
// check::run_fuzz as the program-size budget grows.
//
// This is the number the CI budgets are sized from: the bounded check_fuzz
// ctest leg (120 iterations) and the nightly long run (thousands) both spend
// their time in the same generate → oracle → full-matrix sweep measured
// here.  Cost is dominated by the matrix width (|arrangements| × |SIMD
// tiers| × tiles + straddles) times the oracle's O(p · steps) interpret, so
// it scales near-linearly with max_steps.
#include <cstdio>

#include "check/fuzz.hpp"
#include "bench_util.hpp"

int main() {
  using namespace obx;
  std::printf("fuzz throughput: 60 iterations per row, seed fixed, full "
              "host matrix\n\n");
  std::printf("%10s %10s %12s %12s %12s\n", "max_steps", "programs",
              "configs", "programs/s", "configs/s");
  for (const std::size_t max_steps :
       {std::size_t{40}, std::size_t{120}, std::size_t{360}, std::size_t{720}}) {
    check::FuzzOptions options;
    options.seed = 1;
    options.iters = 60;
    options.gen.max_steps = max_steps;
    check::FuzzReport report;
    const double secs =
        bench::time_once([&] { report = check::run_fuzz(options); });
    if (!report.ok()) {
      std::printf("DIVERGENCE at max_steps=%zu: %s\n", max_steps,
                  report.failures.front().divergence.to_string().c_str());
      return 1;
    }
    std::printf("%10zu %10zu %12zu %12.1f %12.1f\n", max_steps,
                report.programs, report.configs,
                static_cast<double>(report.programs) / secs,
                static_cast<double>(report.configs) / secs);
  }
  return 0;
}

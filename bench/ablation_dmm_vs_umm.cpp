// Ablation: UMM vs DMM (paper Figures 1-2).  The same bulk workloads timed
// under both sibling models.  The models diverge exactly where address
// groups and banks disagree: a row-wise stride that is a multiple of w is a
// full bank conflict on the DMM but 'only' an address-group scatter on the
// UMM; a broadcast is free on the UMM but a full conflict on the DMM.
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"

int main() {
  using namespace obx;
  const umm::MachineConfig cfg{.width = 32, .latency = 16};
  const std::size_t p = 1 << 14;

  std::printf("UMM vs DMM: all algorithms, p = %s, w = %u, l = %u.\n\n",
              format_count(p).c_str(), cfg.width, cfg.latency);
  analysis::Table table({"algorithm", "arrangement", "UMM units", "DMM units",
                         "DMM/UMM"});
  for (const algos::Algorithm& algo : algos::registry()) {
    const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
    const trace::Program program = algo.make_program(n);
    for (const auto arr : {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
      const bulk::Layout layout = bulk::make_layout(program, p, arr);
      const TimeUnits u =
          bulk::TimingEstimator(umm::Model::kUmm, cfg, layout).run(program).time_units;
      const TimeUnits d =
          bulk::TimingEstimator(umm::Model::kDmm, cfg, layout).run(program).time_units;
      table.add_row({algo.name, to_string(arr), std::to_string(u), std::to_string(d),
                     format_fixed(static_cast<double>(d) / static_cast<double>(u), 2)});
    }
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_dmm_vs_umm");
  std::printf("\nColumn-wise (stride-1) access is optimal on BOTH models (ratio 1).\n"
              "Row-wise splits them: on the UMM it scatters across address groups;\n"
              "on the DMM it conflicts only when the input stride shares a factor\n"
              "with the bank count w.\n");
  return 0;
}

// google-benchmark microbenches: raw throughput of the execution engines.
//
// Results are also written as JSON to bench_results/micro_executors.json
// (override with --benchmark_out=...) so CI can track the perf trajectory.
#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "algos/algorithm.hpp"
#include "algos/bitonic_sort.hpp"
#include "algos/prefix_sums.hpp"
#include "algos/tea_cipher.hpp"
#include "bulk/bulk.hpp"
#include "bulk/host_executor.hpp"
#include "bulk/streaming_executor.hpp"
#include "bulk/thread_pool.hpp"
#include "bulk/timing_estimator.hpp"
#include "bulk/umm_executor.hpp"
#include "common/rng.hpp"
#include "common/simd_isa.hpp"
#include "exec/backend.hpp"
#include "plan/plan_cache.hpp"
#include "plan/planner.hpp"
#include "trace/step.hpp"
#include "trace/value.hpp"
#include "umm/cost_model.hpp"

namespace {

using namespace obx;

std::vector<Word> make_inputs(std::size_t n, std::size_t p) {
  Rng rng(1);
  std::vector<Word> inputs;
  inputs.reserve(n * p);
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::prefix_sums_random_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  return inputs;
}

void BM_BulkAlu(benchmark::State& state) {
  const std::size_t lanes = static_cast<std::size_t>(state.range(0));
  std::vector<Word> a(lanes, trace::from_f64(1.5)), b(lanes, trace::from_f64(2.5));
  std::vector<Word> c(lanes, 0), dst(lanes, 0);
  for (auto _ : state) {
    trace::bulk_alu(trace::Op::kAddF, dst.data(), a.data(), b.data(), c.data(), lanes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_BulkAlu)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_HostExecutor(benchmark::State& state) {
  const std::size_t n = 64;
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const bool column = state.range(1) != 0;
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const bulk::Layout layout = column ? bulk::Layout::column_wise(p, n)
                                     : bulk::Layout::row_wise(p, n);
  const bulk::HostBulkExecutor exec(layout);
  for (auto _ : state) {
    auto run = exec.run(program, inputs);
    benchmark::DoNotOptimize(run.memory.data());
  }
  // lane-steps per second.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
  state.SetLabel(layout.name());
}
BENCHMARK(BM_HostExecutor)
    ->Args({1 << 10, 0})
    ->Args({1 << 10, 1})
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1});

void BM_Fig11Backend(benchmark::State& state) {
  // The acceptance workload: Fig. 11 prefix sums at n = 1024, p = 4096 on a
  // single worker, full run() (scatter + lockstep), interpreted vs compiled
  // vs jit.  The label reports the backend that actually ran, so on hosts
  // where emission is unsupported the jit row is visibly the compiled
  // fallback rather than a silently mislabelled number.
  const std::size_t n = 1024;
  const std::size_t p = 4096;
  const exec::Backend backend = state.range(0) == 2   ? exec::Backend::kJit
                                : state.range(0) == 1 ? exec::Backend::kCompiled
                                                      : exec::Backend::kInterpreted;
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const bulk::HostBulkExecutor executor(
      bulk::Layout::column_wise(p, n),
      bulk::HostBulkExecutor::Options{.workers = 1, .backend = backend});
  exec::Backend resolved = backend;
  for (auto _ : state) {
    auto run = executor.run(program, inputs);
    resolved = run.backend;
    benchmark::DoNotOptimize(run.memory.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
  state.SetLabel(to_string(resolved));
}
BENCHMARK(BM_Fig11Backend)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_DispatchOverhead(benchmark::State& state) {
  // Dispatch cost in isolation: prefix sums at n = 64 over a single lane
  // tile (p = 64), so the whole memory image is L1-resident, each fused op
  // does a few vectors of work, and the per-op dispatch — the FusedKind
  // switch plus the opcode switch inside dispatch_op in the compiled
  // engine, versus the patched direct call in the jit — is a first-order
  // cost.  n is kept small so the emitted thunk chain (~28 B per fused op)
  // stays inside L1i; much larger programs turn this into an icache bench
  // instead.  One worker; arg 0 = compiled, arg 1 = jit.  steps_per_s is
  // the headline dispatch-rate counter.
  const std::size_t n = 64;
  const std::size_t p = 64;
  const exec::Backend backend =
      state.range(0) != 0 ? exec::Backend::kJit : exec::Backend::kCompiled;
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const bulk::HostBulkExecutor executor(
      bulk::Layout::column_wise(p, n),
      bulk::HostBulkExecutor::Options{.workers = 1, .backend = backend});
  exec::Backend resolved = backend;
  for (auto _ : state) {
    auto run = executor.run(program, inputs);
    resolved = run.backend;
    benchmark::DoNotOptimize(run.memory.data());
  }
  state.counters["steps_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(program.profile().total()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
  state.SetLabel(to_string(resolved));
}
BENCHMARK(BM_DispatchOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_Fig11BackendScaling(benchmark::State& state) {
  // Thread-per-core scaling on the acceptance workload: Fig. 11 prefix sums
  // at n = 1024, p = 4096, compiled backend, with the lane tiles spread over
  // the CorePool.  Arg = worker count (0 = all cores via
  // default_worker_count()); workers = 1 is the inline baseline, so
  // jobs/s(N) / jobs/s(1) is the scheduler's measured speedup.  Steal and
  // park totals ride along as counters — a steal-heavy run with low speedup
  // points at tile-grain or wakeup tuning, not memory bandwidth.
  const std::size_t n = 1024;
  const std::size_t p = 4096;
  const unsigned workers = state.range(0) != 0
                               ? static_cast<unsigned>(state.range(0))
                               : bulk::default_worker_count();
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const bulk::HostBulkExecutor executor(
      bulk::Layout::column_wise(p, n),
      bulk::HostBulkExecutor::Options{.workers = workers,
                                      .backend = exec::Backend::kCompiled});
  bulk::SchedulerStats sched;
  for (auto _ : state) {
    auto run = executor.run(program, inputs);
    sched += run.sched;
    benchmark::DoNotOptimize(run.memory.data());
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["tasks"] =
      benchmark::Counter(static_cast<double>(sched.tasks) / iters);
  state.counters["steals"] =
      benchmark::Counter(static_cast<double>(sched.steals) / iters);
  state.counters["parks"] =
      benchmark::Counter(static_cast<double>(sched.parks) / iters);
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(p) * iters, benchmark::Counter::kIsRate);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
  state.SetLabel("workers=" + std::to_string(workers));
}
BENCHMARK(BM_Fig11BackendScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_SimdVsScalar(benchmark::State& state) {
  // Lane-vectorization headroom on an ALU-dense workload: TEA (32 rounds of
  // shifts/xors/adds per block) on the compiled backend, column-wise, one
  // worker, with the SIMD tier pinned per run.  Arg 0 = scalar tier, arg 1 =
  // the widest tier this CPU/build supports; the ratio of the two is the
  // lane-vectorization speedup.
  const std::size_t blocks = 32;
  const std::size_t p = 4096;
  const SimdIsa isa = state.range(0) != 0 ? detect_simd_isa() : SimdIsa::kScalar;
  const trace::Program program = algos::tea_program(blocks);
  Rng rng(3);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::tea_random_input(blocks, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }
  const bulk::HostBulkExecutor executor(
      bulk::Layout::column_wise(p, program.memory_words),
      bulk::HostBulkExecutor::Options{
          .workers = 1, .backend = exec::Backend::kCompiled, .simd = isa});
  for (auto _ : state) {
    auto run = executor.run(program, inputs);
    benchmark::DoNotOptimize(run.memory.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
  state.SetLabel(to_string(isa));
}
BENCHMARK(BM_SimdVsScalar)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PlanColdVsWarm(benchmark::State& state) {
  // What the PlanCache buys: cold dispatch re-runs the whole prepare path
  // (optimise attempt, compile drain, row/column simulation, tile resolve)
  // on a fresh program every iteration; warm dispatch is a cache lookup plus
  // the bulk run itself — no re-preparation of any kind.
  const std::size_t n = 64;
  const std::size_t p = 1 << 10;
  const bool warm = state.range(0) != 0;
  const std::vector<Word> inputs = make_inputs(n, p);
  const plan::PlanOptions options;

  plan::PlanCache cache(options);
  if (warm) cache.get_or_build("prefix-sums", algos::prefix_sums_program(n));

  std::vector<Word> outputs;
  for (auto _ : state) {
    std::shared_ptr<const plan::ExecutionPlan> plan;
    if (warm) {
      // The hot serving path: id-only lookup, the program never re-enters.
      plan = cache.lookup("prefix-sums");
    } else {
      // Fresh program => fresh exec_cache slot: nothing is memoised.
      plan = plan::build_plan(algos::prefix_sums_program(n), options);
    }
    auto run = plan::run(*plan, inputs, p, &outputs);
    benchmark::DoNotOptimize(outputs.data());
    benchmark::DoNotOptimize(run.memory.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
  state.SetLabel(warm ? "warm-plan" : "cold-plan");
}
BENCHMARK(BM_PlanColdVsWarm)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

void BM_UmmSimulator(benchmark::State& state) {
  const std::size_t n = 64;
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const umm::MachineConfig cfg{.width = 32, .latency = 100};
  const bulk::UmmBulkExecutor sim(umm::Model::kUmm, cfg,
                                  bulk::Layout::column_wise(p, n));
  for (auto _ : state) {
    auto run = sim.run(program, inputs);
    benchmark::DoNotOptimize(run.time_units);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.memory_steps()));
}
BENCHMARK(BM_UmmSimulator)->Arg(1 << 10)->Arg(1 << 12);

void BM_TimingEstimator(benchmark::State& state) {
  const std::size_t n = 1024;
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const trace::Program program = algos::prefix_sums_program(n);
  const umm::MachineConfig cfg{.width = 32, .latency = 100};
  const bulk::TimingEstimator est(umm::Model::kUmm, cfg,
                                  bulk::Layout::column_wise(p, n));
  for (auto _ : state) {
    auto r = est.run(program);
    benchmark::DoNotOptimize(r.time_units);
  }
  // Steps estimated per second — independent of p thanks to the fast path.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(program.memory_steps()));
}
BENCHMARK(BM_TimingEstimator)->Arg(1 << 10)->Arg(1 << 22);

// Simulated units of every plannable arrangement for the bitonic sorting
// network under the conflict-heavy shared-tier machine — the planner's
// search space, one row per arrangement.  The units land as counters so the
// CI artifact tracks the conflict-free arrangement's win over time; the
// measured loop is the simulate_units call the search itself pays.
void BM_ArrangementSweep(benchmark::State& state) {
  const std::size_t n = 64;
  const std::size_t p = 1 << 10;
  const trace::Program program = algos::bitonic_sort_program(n);
  const umm::MachineConfig cfg = umm::conflict_heavy_example();

  const std::pair<bulk::Arrangement, std::size_t> sweep[] = {
      {bulk::Arrangement::kColumnWise, 0},
      {bulk::Arrangement::kRowWise, 0},
      {bulk::Arrangement::kBlocked, cfg.width},
      {bulk::Arrangement::kConflictFree, umm::conflict_free_stride(cfg.shared)}};
  const auto& [arr, param] = sweep[static_cast<std::size_t>(state.range(0))];
  const bulk::Layout layout = bulk::make_layout(program, p, arr, param);

  TimeUnits units = 0;
  for (auto _ : state) {
    units = bulk::simulate_units(program, layout, umm::Model::kUmm, cfg);
    benchmark::DoNotOptimize(units);
  }
  state.SetLabel(layout.name());
  state.counters["sim_units"] =
      benchmark::Counter(static_cast<double>(units));
}
BENCHMARK(BM_ArrangementSweep)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

void BM_StridedStepCost(benchmark::State& state) {
  const umm::MachineConfig cfg{.width = 32, .latency = 100};
  const umm::StridedStepCost cost(umm::Model::kUmm, cfg, 1 << 20, 1);
  Addr base = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.step_time(base));
    base = (base + 7) & 1023;
  }
}
BENCHMARK(BM_StridedStepCost);

void BM_StreamingExecutor(benchmark::State& state) {
  // Overhead of batching + callbacks vs the monolithic host run.
  const std::size_t n = 64;
  const std::size_t p = 1 << 12;
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const trace::Program program = algos::prefix_sums_program(n);
  const std::vector<Word> inputs = make_inputs(n, p);
  const bulk::StreamingExecutor exec(
      bulk::StreamingExecutor::Options{.max_resident_lanes = batch});
  std::uint64_t sink = 0;
  for (auto _ : state) {
    exec.run(
        program, p,
        [&](Lane j, std::span<Word> dst) {
          const Word* src = inputs.data() + j * n;
          std::copy(src, src + n, dst.begin());
        },
        [&](Lane, std::span<const Word> out) { sink ^= out[0]; });
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p * program.profile().total()));
}
BENCHMARK(BM_StreamingExecutor)->Arg(1 << 8)->Arg(1 << 12);

void BM_AlgosSuite(benchmark::State& state) {
  // The whole registry as one serving-shaped scenario sweep: every algorithm
  // at its largest test size <= 64, compiled backend, column-wise, one
  // worker.  One iteration = one pass over every scenario, so time/iter is
  // "cost of the full workload family" and the counters make the suite's
  // breadth a tracked metric — `algorithms` is the registry size and
  // `scenarios` the number of (algorithm, n) pairs executed; CI's bench-smoke
  // summary surfaces both, so shrinking the registry or the sweep shows up
  // as a perf-dashboard diff, not just a test-count change.
  const std::size_t p = 64;
  struct Scenario {
    const algos::Algorithm* algo;
    trace::Program program;
    std::vector<Word> inputs;
    bulk::HostBulkExecutor executor;
  };
  std::vector<Scenario> scenarios;
  Rng rng(7);
  for (const auto& algo : algos::registry()) {
    std::size_t n = algo.test_sizes.front();
    for (const std::size_t size : algo.test_sizes) {
      if (size <= 64 && size > n) n = size;
    }
    trace::Program program = algo.make_program(n);
    std::vector<Word> inputs;
    inputs.reserve(p * program.input_words);
    for (std::size_t j = 0; j < p; ++j) {
      const auto one = algo.make_input(n, rng);
      inputs.insert(inputs.end(), one.begin(), one.end());
    }
    bulk::HostBulkExecutor executor(
        bulk::Layout::column_wise(p, program.memory_words),
        bulk::HostBulkExecutor::Options{.workers = 1,
                                        .backend = exec::Backend::kCompiled});
    scenarios.push_back(Scenario{&algo, std::move(program), std::move(inputs),
                                 std::move(executor)});
  }

  std::int64_t lane_steps = 0;
  for (auto _ : state) {
    for (const auto& scenario : scenarios) {
      auto run = scenario.executor.run(scenario.program, scenario.inputs);
      benchmark::DoNotOptimize(run.memory.data());
    }
  }
  for (const auto& scenario : scenarios) {
    lane_steps += static_cast<std::int64_t>(
        p * scenario.program.profile().total());
  }
  state.counters["algorithms"] =
      benchmark::Counter(static_cast<double>(algos::registry().size()));
  state.counters["scenarios"] =
      benchmark::Counter(static_cast<double>(scenarios.size()));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          lane_steps);
  state.SetLabel("algos_suite");
}
BENCHMARK(BM_AlgosSuite)->Unit(benchmark::kMillisecond);

void BM_StepGenerator(benchmark::State& state) {
  // Coroutine streaming overhead per step.
  const std::size_t n = 4096;
  const trace::Program program = algos::prefix_sums_program(n);
  for (auto _ : state) {
    std::uint64_t count = 0;
    auto gen = program.stream();
    trace::Step s;
    while (gen.next(s)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(program.profile().total()));
}
BENCHMARK(BM_StepGenerator);

}  // namespace

// Custom main: default to machine-readable JSON output so every run leaves a
// trackable artifact, while still honouring an explicit --benchmark_out.
int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // The larger workloads allocate a fresh multi-megabyte memory image per
  // run() call.  glibc serves allocations this size straight from mmap (and
  // trims them back on free), so every iteration would re-fault the whole
  // image and the benches would mostly measure kernel page-fault throughput —
  // identically on every engine.  Keep big blocks on the heap so iterations
  // measure executor cost instead.
  mallopt(M_MMAP_THRESHOLD, 256 * 1024 * 1024);
  mallopt(M_TRIM_THRESHOLD, 256 * 1024 * 1024);
#endif
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag;
  std::string format_flag;
  if (!has_out) {
    std::filesystem::create_directories("bench_results");
    out_flag = "--benchmark_out=bench_results/micro_executors.json";
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  // Recorded in the JSON context block so CI artifacts say which SIMD tier
  // the non-pinned benches actually ran on.
  benchmark::AddCustomContext("simd_isa", obx::to_string(obx::active_simd_isa()));
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Cross-algorithm suite: generalises Figures 11-12 to the whole oblivious
// algorithm library.  For every registered algorithm, simulated row-wise vs
// column-wise bulk execution at a fixed lane count, plus the RAM-model cost
// of running the sequential algorithm p times (the idealised CPU).
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "gpusim/virtual_gpu.hpp"

namespace {

using namespace obx;

/// Suite problem size per algorithm: large enough to be meaningful, small
/// enough that a full stream pass stays fast.
std::size_t suite_size(const algos::Algorithm& algo) {
  if (algo.name == "opt-triangulation") return 32;
  if (algo.name == "matmul") return 16;
  if (algo.name == "edit-distance") return 32;
  return algo.test_sizes.back();
}

}  // namespace

int main() {
  const gpusim::VirtualGpu gpu{gpusim::gtx_titan()};
  const umm::MachineConfig cfg = gpu.spec().memory;
  const std::size_t p = 1 << 16;

  std::printf("Bulk execution of the full oblivious-algorithm library\n"
              "(p = %s inputs, UMM w=%u l=%u).  'RAM x p' is the unit-cost\n"
              "sequential machine executing the algorithm p times.\n\n",
              format_count(p).c_str(), cfg.width, cfg.latency);

  analysis::Table table({"algorithm", "n", "t (mem steps)", "RAM x p", "row units",
                         "col units", "row/col", "col vs lower bound"});
  for (const algos::Algorithm& algo : algos::registry()) {
    const std::size_t n = suite_size(algo);
    const trace::Program program = algo.make_program(n);
    const std::uint64_t t = algo.memory_steps(n);

    const bulk::TimingEstimator row(umm::Model::kUmm, cfg,
                                    bulk::make_layout(program, p, bulk::Arrangement::kRowWise));
    const bulk::TimingEstimator col(umm::Model::kUmm, cfg,
                                    bulk::make_layout(program, p, bulk::Arrangement::kColumnWise));
    const TimeUnits row_units = row.run(program).time_units;
    const TimeUnits col_units = col.run(program).time_units;
    const TimeUnits lower = umm::theorem3_lower_bound(t, p, cfg);

    table.add_row({algo.name, std::to_string(n), std::to_string(t),
                   std::to_string(t * p), std::to_string(row_units),
                   std::to_string(col_units),
                   format_fixed(static_cast<double>(row_units) /
                                    static_cast<double>(col_units),
                                1),
                   format_fixed(static_cast<double>(col_units) /
                                    static_cast<double>(lower),
                                2)});
  }
  table.print(std::cout);
  obx::bench::save_table(table, "algos_suite");
  std::printf("\n'col vs lower bound' near 1.0 demonstrates Theorem 3 optimality\n"
              "of the column-wise arrangement across the whole library.\n");
  return 0;
}

// Network front-end ablation: pipeline depth × tenant mix over a loopback
// socket, against the in-process service as the zero-wire baseline.
//
// The wire adds framing, two syscalls, and a round trip per request; at
// pipeline depth 1 that round trip is on the critical path of every job, so
// throughput is latency-bound.  Deepening the pipeline overlaps the wire
// with execution — the socket analog of batching amortising the l·t floor —
// until throughput converges on the service's own capacity.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "common/format.hpp"
#include "net/load_gen.hpp"
#include "net/server.hpp"
#include "serve/load_gen.hpp"
#include "serve/service.hpp"
#include "bench_util.hpp"

namespace {

obx::serve::ServiceOptions service_options() {
  obx::serve::ServiceOptions options;
  options.queue_capacity = 2048;
  options.batcher.max_batch_lanes = 512;
  options.batcher.max_batch_delay = std::chrono::microseconds(1000);
  options.executors = 2;
  return options;
}

}  // namespace

int main() {
  using namespace obx;
  const std::size_t n = 256;
  const std::size_t jobs_per_cell = 6000;
  const algos::Algorithm& algo = algos::find("prefix-sums");

  std::printf("net throughput sweep: prefix-sums n=%zu, %zu jobs/cell, "
              "3 tenants x 2 connections, closed-loop\n\n",
              n, jobs_per_cell);

  const auto make_workload = [&](serve::BulkService& service) {
    service.register_program(algo.name, algo.make_program(n));
    return std::vector<serve::WorkloadItem>{serve::WorkloadItem{
        .program_id = algo.name,
        .make_input = [&](Rng& rng) { return algo.make_input(n, rng); }}};
  };

  analysis::Table table({"path", "pipeline", "jobs/s", "completed",
                         "p50 us", "p95 us", "vs in-process"});

  // Baseline: the identical closed-loop workload with no socket in the way.
  double baseline = 0;
  {
    serve::BulkService service(service_options());
    const auto workload = make_workload(service);
    serve::LoadGenOptions load;
    load.jobs = jobs_per_cell;
    load.producers = 6;
    load.arrival_rate_hz = 0;
    const serve::LoadGenReport report = serve::run_load(service, workload, load);
    service.stop();
    baseline = report.jobs_per_sec;
    table.add_row({"in-process", "-", format_fixed(report.jobs_per_sec, 0),
                   std::to_string(report.completed),
                   format_fixed(report.p50_latency_us, 0),
                   format_fixed(report.p95_latency_us, 0), "1.00"});
  }

  for (const std::size_t depth : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}}) {
    serve::BulkService service(service_options());
    const auto workload = make_workload(service);
    net::Server server(service, net::ServerOptions{});

    const std::vector<net::NetTenantSpec> tenants = {
        {.name = "interactive", .priority = serve::Priority::kHigh,
         .weight = 1.0, .connections = 2},
        {.name = "batchy", .priority = serve::Priority::kNormal,
         .weight = 2.0, .connections = 2},
        {.name = "bulk-low", .priority = serve::Priority::kLow,
         .weight = 1.0, .connections = 2},
    };
    net::NetLoadOptions load;
    load.jobs = jobs_per_cell;
    load.arrival_rate_hz = 0;  // closed-loop: measure sustainable throughput
    load.pipeline_depth = depth;
    const net::NetLoadReport report = net::run_net_load(
        server.host(), server.port(), workload, tenants, load);
    server.stop();
    service.stop();

    double p50 = 0, p95 = 0;
    for (const net::NetTenantReport& t : report.tenants) {
      p50 += t.p50_latency_us / static_cast<double>(report.tenants.size());
      p95 += t.p95_latency_us / static_cast<double>(report.tenants.size());
    }
    table.add_row({"loopback", std::to_string(depth),
                   format_fixed(report.jobs_per_sec, 0),
                   std::to_string(report.completed), format_fixed(p50, 0),
                   format_fixed(p95, 0),
                   baseline > 0
                       ? format_fixed(report.jobs_per_sec / baseline, 2)
                       : "-"});
    if (!report.exactly_once()) {
      std::printf("LEDGER VIOLATION at pipeline depth %zu\n", depth);
      return 1;
    }
  }
  table.print(std::cout);
  bench::save_table(table, "net_throughput");
  return 0;
}

// HMM staged schedule vs the paper's global-only execution.
//
// The paper runs everything out of global memory ("we do not use the shared
// memory").  The HMM (the authors' own hierarchical model) lets us quantify
// that choice: staging each lane's array in shared memory costs one
// round-trip of global traffic and buys shared-latency compute.  The win
// factor tracks the reuse ratio t/n — negligible for prefix-sums (t = 2n),
// moderate for FFT (t ≈ 8n log n), decisive for OPT (t = Θ(n³)).
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "hmm/hmm_estimator.hpp"

int main() {
  using namespace obx;
  const hmm::HmmEstimator est(hmm::gtx_titan_hmm());
  const std::size_t p = 1 << 16;

  std::printf("HMM staged schedule vs global-only (paper's setup), p = %s,\n"
              "d = %u SMs, shared w=%u l=%u, global w=%u l=%u.\n\n",
              format_count(p).c_str(), est.config().num_sms,
              est.config().shared.width, est.config().shared.latency,
              est.config().global.width, est.config().global.latency);

  analysis::Table table({"algorithm", "n", "reuse t/n", "global-only", "staged total",
                         "copy", "compute", "staged win"});
  struct Row {
    const char* algo;
    std::size_t n;
  };
  for (const Row r : {Row{"prefix-sums", 1024}, Row{"convolution", 512},
                      Row{"fft", 512}, Row{"bitonic-sort", 512},
                      Row{"edit-distance", 48}, Row{"matmul", 32},
                      Row{"floyd-warshall", 48}, Row{"opt-triangulation", 48}}) {
    const algos::Algorithm& algo = algos::find(r.algo);
    const trace::Program program = algo.make_program(r.n);
    if (!est.admissible(program)) {
      table.add_row({r.algo, std::to_string(r.n), "-", "-", "-", "-", "-",
                     "does not fit"});
      continue;
    }
    const std::uint64_t t = algo.memory_steps(r.n);
    const hmm::HmmTiming staged = est.run(program, p);
    const TimeUnits global = est.global_only(program, p);
    table.add_row(
        {r.algo, std::to_string(r.n),
         format_fixed(static_cast<double>(t) / static_cast<double>(program.memory_words),
                      1),
         std::to_string(global), std::to_string(staged.total()),
         std::to_string(staged.copy_in + staged.copy_out),
         std::to_string(staged.compute),
         format_fixed(static_cast<double>(global) / static_cast<double>(staged.total()),
                      2)});
  }
  table.print(std::cout);
  bench::save_table(table, "hmm_vs_umm");
  std::printf("\n'staged win' < 1 means the paper's global-only choice was right\n"
              "for that algorithm; >> 1 quantifies what shared-memory staging\n"
              "would have bought (reuse-heavy DP/sort kernels).\n");
  return 0;
}

// Ablation: the peephole optimiser.  Two questions:
//   1. How much headroom is left in the hand-tuned algorithm generators?
//      (Near zero — they keep values in registers already.)
//   2. How much does the optimiser recover on *naively recorded* code, the
//      output of the sequential-to-bulk conversion system?  (A lot — naive
//      recordings reload neighbours and constants.)
// Since bulk time is proportional to the memory-step count t (Theorem 2),
// the step reduction is exactly the simulated speedup.
#include <cstdio>
#include <iostream>

#include "algos/algorithm.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "opt/optimizer.hpp"
#include "trace/recorder.hpp"

namespace {

using namespace obx;

/// Naive recordings: written the way the sequential C code reads, reloading
/// everything from memory (what an unsophisticated converter would emit).
trace::Program naive_moving_average(std::size_t n) {
  trace::Recorder rec(2 * n);
  auto third = rec.fimm(1.0 / 3.0);
  for (Addr i = 0; i + 2 < n; ++i) {
    auto s = (rec.fload(i) + rec.fload(i + 1) + rec.fload(i + 2)) * third;
    rec.fstore(n + i, s);
  }
  return std::move(rec).finish("naive-moving-average", n, n, n);
}

trace::Program naive_horner(std::size_t n) {
  // Reloads x on every iteration instead of keeping it in a register.
  trace::Recorder rec(n + 2);
  auto r = rec.fload(n - 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    r = r * rec.fload(n) + rec.fload(i);
  }
  rec.fstore(n + 1, r);
  return std::move(rec).finish("naive-horner", n + 1, n + 1, 1);
}

trace::Program naive_stencil(std::size_t n) {
  // 1-D heat step with a scratch buffer that dead-store elimination can
  // partially clean: writes intermediate averages it never reads back.
  trace::Recorder rec(3 * n);
  auto half = rec.fimm(0.5);
  for (Addr i = 1; i + 1 < n; ++i) {
    auto avg = (rec.fload(i - 1) + rec.fload(i + 1)) * half;
    rec.fstore(2 * n + i, avg);  // scratch log, never read: dead
    rec.fstore(n + i, avg);
  }
  return std::move(rec).finish("naive-stencil", n, n, n);
}

void report(analysis::Table& table, const trace::Program& program, std::size_t p,
            const umm::MachineConfig& cfg) {
  const opt::OptimizeResult r = opt::optimize(program);
  auto col_units = [&](const trace::Program& prog) {
    return bulk::TimingEstimator(umm::Model::kUmm, cfg,
                                 bulk::make_layout(prog, p, bulk::Arrangement::kColumnWise))
        .run(prog)
        .time_units;
  };
  const TimeUnits before = col_units(program);
  const TimeUnits after = col_units(r.program);
  table.add_row({program.name, std::to_string(r.before.memory()),
                 std::to_string(r.after.memory()),
                 format_fixed(100.0 * r.memory_step_reduction(), 1) + "%",
                 std::to_string(before), std::to_string(after),
                 format_fixed(static_cast<double>(before) / static_cast<double>(after), 2)});
}

}  // namespace

int main() {
  using namespace obx;
  const std::size_t p = 1 << 14;
  const umm::MachineConfig cfg{.width = 32, .latency = 100};
  std::printf("Optimiser ablation, p = %s, w = %u, l = %u, column-wise.\n\n",
              format_count(p).c_str(), cfg.width, cfg.latency);

  analysis::Table table({"program", "t before", "t after", "t reduction",
                         "col units before", "col units after", "sim speedup"});
  // Hand-tuned generators: expected near-zero headroom.
  for (const char* name : {"prefix-sums", "fft", "opt-triangulation", "tea"}) {
    const algos::Algorithm& algo = algos::find(name);
    const std::size_t n = algo.test_sizes[algo.test_sizes.size() / 2];
    report(table, algo.make_program(n), p, cfg);
  }
  // Naive recordings: the optimiser earns its keep.
  report(table, naive_moving_average(256), p, cfg);
  report(table, naive_horner(256), p, cfg);
  report(table, naive_stencil(256), p, cfg);
  table.print(std::cout);
  bench::save_table(table, "ablation_optimizer");
  std::printf("\nHand-tuned generators are already register-tight; the optimiser\n"
              "matters for conversion-system (Recorder) output, where it removes\n"
              "reloads and dead scratch stores — and by Theorem 2 the memory-step\n"
              "reduction converts 1:1 into simulated bulk speedup.\n");
  return 0;
}

// Ablation: memory latency l.  Theorem 3's l·t term is a floor no
// arrangement can beat: for small p both arrangements cost ~l·t, and the
// crossover where coalescing starts to matter moves right as l grows.
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "umm/cost_model.hpp"
#include "common/format.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 64;
  const trace::Program program = algos::prefix_sums_program(n);
  const std::uint64_t t = algos::prefix_sums_memory_steps(n);

  std::printf("Latency ablation: bulk prefix-sums, n = %zu, w = 32.\n\n", n);
  analysis::Table table({"l", "p", "col units", "l*t floor", "col/floor"});
  for (std::uint32_t l : {1u, 8u, 64u, 256u, 1024u}) {
    const umm::MachineConfig cfg{.width = 32, .latency = l};
    for (std::size_t p : {64u, 4096u, 262144u}) {
      const auto col = bulk::TimingEstimator(
                           umm::Model::kUmm, cfg,
                           bulk::make_layout(program, p, bulk::Arrangement::kColumnWise))
                           .run(program);
      const TimeUnits floor = static_cast<TimeUnits>(l) * t;
      table.add_row({std::to_string(l), format_count(p),
                     std::to_string(col.time_units), std::to_string(floor),
                     format_fixed(static_cast<double>(col.time_units) /
                                      static_cast<double>(floor),
                                  2)});
    }
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_latency");
  std::printf("\nExpected: at small p, col/floor -> 1 (latency-bound); at large p\n"
              "the ratio grows as the p/w bandwidth term takes over.\n");
  return 0;
}

// Ablation: data arrangement.  Row-wise, column-wise, and the blocked
// hybrids in between — how much coalescing does each block size recover, and
// where does the row/column crossover sit as p grows?
#include <cstdio>
#include <iostream>

#include "algos/prefix_sums.hpp"
#include "analysis/series.hpp"
#include "analysis/table.hpp"
#include "bench_util.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 64;
  const umm::MachineConfig cfg{.width = 32, .latency = 200};
  const trace::Program program = algos::prefix_sums_program(n);

  std::printf("Layout ablation: bulk prefix-sums, n = %zu, w = %u, l = %u.\n"
              "blocked(B) interleaves lanes within blocks of B; B=32 (= w)\n"
              "already restores full coalescing.\n\n",
              n, cfg.width, cfg.latency);

  analysis::Table table(
      {"p", "row-wise", "blocked(32)", "blocked(256)", "column-wise", "row/col"});
  std::vector<double> rows, cols;
  for (std::size_t p : bench::p_sweep(1 << 20)) {
    auto units = [&](const bulk::Layout& layout) {
      return bulk::TimingEstimator(umm::Model::kUmm, cfg, layout)
          .run(program)
          .time_units;
    };
    const TimeUnits row = units(bulk::Layout::row_wise(p, n));
    const TimeUnits b32 = units(bulk::Layout::blocked(p, n, 32));
    const TimeUnits b256 = p >= 256 ? units(bulk::Layout::blocked(p, n, 256)) : b32;
    const TimeUnits col = units(bulk::Layout::column_wise(p, n));
    rows.push_back(static_cast<double>(row));
    cols.push_back(static_cast<double>(col));
    table.add_row({format_count(p), std::to_string(row), std::to_string(b32),
                   std::to_string(b256), std::to_string(col),
                   format_fixed(static_cast<double>(row) / static_cast<double>(col), 1)});
  }
  table.print(std::cout);
  bench::save_table(table, "ablation_layout");

  const auto cross = analysis::crossover_index(cols, rows);
  if (cross) {
    std::printf("\ncolumn-wise first strictly beats row-wise at p = %s and stays\n"
                "ahead (the latency floor hides the difference below that).\n",
                format_count(64u << *cross).c_str());
  } else {
    std::printf("\ncolumn-wise never strictly beat row-wise in this sweep.\n");
  }
  return 0;
}

// Optimal polygon triangulation: the paper's dynamic-programming case study,
// run as a small geometry batch job.
//
// A batch of random convex polygons is triangulated at once: chord weights
// are Euclidean lengths, Algorithm OPT is bulk-executed for every polygon,
// and the winning chord set of one polygon is reconstructed from the DP
// table ("a few extra bookkeeping steps", as the paper puts it).
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "algos/opt_triangulation.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;

struct Point {
  double x, y;
};

/// Random convex n-gon: points on a noisy circle, in angular order.
std::vector<Point> random_convex_polygon(std::size_t n, Rng& rng) {
  std::vector<double> angles(n);
  const double slice = 2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    angles[i] = slice * (static_cast<double>(i) + 0.5 * rng.next_double());
  }
  std::vector<Point> pts(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts[i] = {std::cos(angles[i]), std::sin(angles[i])};
  }
  return pts;
}

std::vector<double> chord_lengths(const std::vector<Point>& pts) {
  const std::size_t n = pts.size();
  std::vector<double> c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].x - pts[j].x;
      const double dy = pts[i].y - pts[j].y;
      c[i * n + j] = std::sqrt(dx * dx + dy * dy);
    }
  }
  return c;
}

/// Walks the DP table, emitting the chords of one optimal triangulation.
/// Subproblem (i, j) is the subpolygon bounded by chord (i-1, j); that chord
/// is real unless (i-1, j) is the root edge v_0 v_{n-1}.
void reconstruct(std::size_t n, const std::vector<double>& m,
                 const std::vector<double>& c, std::size_t i, std::size_t j,
                 std::vector<std::pair<std::size_t, std::size_t>>& chords) {
  if (j <= i) return;  // leaf: a polygon edge, not a chord
  if (!(i == 1 && j == n - 1)) chords.emplace_back(i - 1, j);
  // Find the split k the DP chose.
  for (std::size_t k = i; k <= j - 1; ++k) {
    const double total = m[i * n + k] + m[(k + 1) * n + j] + c[(i - 1) * n + j];
    if (std::abs(total - m[i * n + j]) < 1e-9) {
      reconstruct(n, m, c, i, k, chords);
      reconstruct(n, m, c, k + 1, j, chords);
      return;
    }
  }
}

}  // namespace

int main() {
  using namespace obx;
  const std::size_t n = 16;   // vertices per polygon
  const std::size_t p = 128;  // polygons in the batch

  // 1. Build the batch of weight matrices.
  Rng rng(42);
  const trace::Program program = algos::opt_program(n);
  std::vector<std::vector<Point>> polygons;
  std::vector<Word> inputs;
  inputs.reserve(p * n * n);
  for (std::size_t q = 0; q < p; ++q) {
    polygons.push_back(random_convex_polygon(n, rng));
    for (double w : chord_lengths(polygons.back())) {
      inputs.push_back(trace::from_f64(w));
    }
  }

  // 2. Bulk-execute Algorithm OPT for all polygons.
  const bulk::BulkOutputs tables =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 3. Verify every polygon against the native DP and summarise.
  double min_weight = 1e300, max_weight = 0.0;
  for (std::size_t q = 0; q < p; ++q) {
    const std::vector<double> c = chord_lengths(polygons[q]);
    const double expected = algos::opt_native(n, c);
    const double got =
        trace::as_f64(tables.output(q)[1 * n + (n - 1)]);  // M[1][n-1]
    if (std::abs(got - expected) > 1e-9) {
      std::printf("polygon %zu: bulk %.9f != native %.9f\n", q, got, expected);
      return 1;
    }
    min_weight = std::min(min_weight, got);
    max_weight = std::max(max_weight, got);
  }
  std::printf("triangulated %zu convex %zu-gons in bulk; optimal weights in "
              "[%.4f, %.4f]\n",
              p, n, min_weight, max_weight);

  // 4. Reconstruct the chord set of the first polygon.
  std::vector<double> m(n * n);
  const auto table = tables.output(0);
  for (std::size_t i = 0; i < n * n; ++i) m[i] = trace::as_f64(table[i]);
  const std::vector<double> c = chord_lengths(polygons[0]);
  std::vector<std::pair<std::size_t, std::size_t>> chords;
  reconstruct(n, m, c, 1, n - 1, chords);
  std::printf("polygon 0 uses %zu chords (a triangulation of an %zu-gon has "
              "%zu):\n  ",
              chords.size(), n, n - 3);
  for (const auto& [a, b] : chords) std::printf("(%zu,%zu) ", a, b);
  std::printf("\n");
  if (chords.size() != n - 3) {
    std::printf("unexpected chord count!\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}

// Bulk sorting: many small independent sorts, the pattern that motivates
// oblivious sorting networks on wide machines (top-k per user, per-bucket
// ordering, batched median filters, ...).
//
// p sensor windows of n readings each are sorted in bulk with the bitonic
// network; per-window medians and extrema come straight out of the sorted
// lanes.  A row-wise vs column-wise simulated comparison shows the sorting
// network — t = Θ(n log² n) — benefits from coalescing exactly like the
// paper's two case studies.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "algos/bitonic_sort.hpp"
#include "bulk/bulk.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "trace/value.hpp"

int main() {
  using namespace obx;

  const std::size_t n = 128;  // readings per window
  const std::size_t p = 1024; // windows

  const trace::Program program = algos::bitonic_sort_program(n);

  // 1. Synthesise noisy sensor windows with occasional spikes.
  Rng rng(99);
  std::vector<Word> inputs(p * n);
  for (std::size_t j = 0; j < p; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double v = 20.0 + rng.next_double(-1.0, 1.0);
      if (rng.next_below(97) == 0) v += 100.0;  // spike
      inputs[j * n + i] = trace::from_f64(v);
    }
  }

  // 2. Bulk-sort all windows.
  const bulk::BulkOutputs sorted =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 3. Validate (sortedness + permutation) and extract robust statistics.
  std::size_t spiky_windows = 0;
  double median_lo = 1e300, median_hi = -1e300;
  for (std::size_t j = 0; j < p; ++j) {
    const auto win = sorted.output(j);
    std::vector<double> expect(n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = trace::as_f64(inputs[j * n + i]);
    std::sort(expect.begin(), expect.end());
    for (std::size_t i = 0; i < n; ++i) {
      if (trace::as_f64(win[i]) != expect[i]) {
        std::printf("window %zu not correctly sorted at %zu\n", j, i);
        return 1;
      }
    }
    const double median = trace::as_f64(win[n / 2]);
    median_lo = std::min(median_lo, median);
    median_hi = std::max(median_hi, median);
    if (trace::as_f64(win[n - 1]) > 60.0) ++spiky_windows;
  }
  std::printf("sorted %zu windows of %zu readings; medians in [%.2f, %.2f]; "
              "%zu windows contain spikes\n",
              p, n, median_lo, median_hi, spiky_windows);

  // 4. Simulated arrangement comparison for the sorting network.
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  const double row = gpu.estimate_seconds(program, p, bulk::Arrangement::kRowWise);
  const double col = gpu.estimate_seconds(program, p, bulk::Arrangement::kColumnWise);
  std::printf("simulated bulk bitonic sort: row-wise %s, column-wise %s (%.1fx)\n",
              format_seconds(row).c_str(), format_seconds(col).c_str(), row / col);
  std::printf("ok\n");
  return 0;
}

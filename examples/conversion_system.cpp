// The conversion system (paper Section VI, future work): "a conversion
// system that automatically converts a sequential program ... for the bulk
// execution".
//
// A user writes a *new* sequential algorithm — here, second-order exponential
// smoothing of a time series — against the Recorder's value handles.  The
// recording is automatically an oblivious program: it is checked, profiled,
// bulk-executed on both arrangements, and timed on the simulated UMM, with
// zero algorithm-specific parallel code.
#include <cstdio>
#include <vector>

#include "bulk/bulk.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "trace/oblivious_checker.hpp"
#include "trace/recorder.hpp"
#include "trace/value.hpp"

int main() {
  using namespace obx;

  const std::size_t n = 128;  // series length
  const std::size_t p = 256;  // series count
  const double alpha = 0.25;

  // 1. Write the sequential algorithm.  No obx internals beyond the typed
  //    handles: this reads like the plain double-loop it replaces.
  trace::Recorder rec(2 * n);  // input series at [0, n), smoothed at [n, 2n)
  {
    auto a = rec.fimm(alpha);
    auto one_minus_a = rec.fimm(1.0 - alpha);
    auto level = rec.fload(0);
    auto trend = rec.fimm(0.0);
    rec.fstore(n, level);
    for (Addr i = 1; i < n; ++i) {
      auto x = rec.fload(i);
      auto prev_level = level;
      level = a * x + one_minus_a * (level + trend);
      trend = a * (level - prev_level) + one_minus_a * trend;
      rec.fstore(n + i, level);
    }
  }
  const trace::Program program =
      std::move(rec).finish("double-exp-smoothing", n, n, n);
  std::printf("recorded '%s': %llu steps, %zu registers, t = %llu memory steps\n",
              program.name.c_str(),
              static_cast<unsigned long long>(program.profile().total()),
              program.register_count,
              static_cast<unsigned long long>(program.memory_steps()));

  // 2. The conversion is oblivious by construction; verify mechanically.
  const auto report = trace::check_program(program, 3);
  if (!report.oblivious) {
    std::printf("NOT oblivious: %s\n", report.detail.c_str());
    return 1;
  }
  std::printf("obliviousness check: passed (%zu-entry access function)\n",
              report.access_function.size());

  // 3. Bulk-execute p series and spot-check against a native loop.
  Rng rng(21);
  std::vector<Word> inputs;
  for (std::size_t j = 0; j < p; ++j) {
    const auto series = rng.words_f64(n, 0.0, 100.0);
    inputs.insert(inputs.end(), series.begin(), series.end());
  }
  const bulk::BulkOutputs out =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  for (std::size_t j = 0; j < p; j += 63) {
    double level = trace::as_f64(inputs[j * n]);
    double trend = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) {
        const double x = trace::as_f64(inputs[j * n + i]);
        const double prev = level;
        level = alpha * x + (1.0 - alpha) * (level + trend);
        trend = alpha * (level - prev) + (1.0 - alpha) * trend;
      }
      if (trace::as_f64(out.output(j)[i]) != level) {
        std::printf("mismatch at series %zu element %zu\n", j, i);
        return 1;
      }
    }
  }
  std::printf("bulk smoothing of %zu series verified against the native loop\n", p);

  // 4. Simulated cost, both arrangements.
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  for (const auto arr : {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
    std::printf("  %-12s %s\n", to_string(arr).c_str(),
                format_seconds(gpu.estimate_seconds(program, p, arr)).c_str());
  }
  std::printf("ok\n");
  return 0;
}

// Signal processing: the paper's motivating bulk-FFT application.
//
// "In practical signal processing, an input stream is equally partitioned
// into many blocks, and the FFT algorithm is executed for each block in turn
// or in parallel.  This is exactly the bulk execution of the FFT algorithm."
//
// This example synthesises a long sample stream containing a few sine
// bursts, chops it into p blocks of n samples, bulk-executes the oblivious
// FFT over all blocks at once, and then scans the per-block spectra to
// locate the bursts — a toy spectrogram.
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "algos/fft.hpp"
#include "bulk/bulk.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "trace/value.hpp"

int main() {
  using namespace obx;

  const std::size_t n = 256;   // samples per block
  const std::size_t p = 512;   // blocks in the stream
  const std::size_t total = n * p;

  // 1. Synthesise the stream: noise plus two sine bursts at known offsets.
  Rng rng(7);
  std::vector<double> stream(total);
  for (double& s : stream) s = rng.next_double(-0.1, 0.1);
  struct Burst {
    std::size_t begin_block, end_block, bin;
  };
  const Burst bursts[] = {{100, 120, 16}, {300, 340, 48}};
  for (const Burst& b : bursts) {
    for (std::size_t blk = b.begin_block; blk < b.end_block; ++blk) {
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(blk * n + i);
        stream[blk * n + i] += std::sin(2.0 * std::numbers::pi *
                                        static_cast<double>(b.bin) * t /
                                        static_cast<double>(n));
      }
    }
  }

  // 2. Pack blocks as FFT inputs (interleaved complex, imag = 0).
  const trace::Program program = algos::fft_program(n);
  std::vector<Word> inputs(p * 2 * n);
  for (std::size_t blk = 0; blk < p; ++blk) {
    for (std::size_t i = 0; i < n; ++i) {
      inputs[blk * 2 * n + 2 * i] = trace::from_f64(stream[blk * n + i]);
      inputs[blk * 2 * n + 2 * i + 1] = trace::from_f64(0.0);
    }
  }

  // 3. Bulk-execute the FFT over all 512 blocks in lockstep.
  const bulk::BulkOutputs spectra =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 4. Detect bursts: a block is "hot" in bin k if |X_k| is large.
  std::printf("spectrogram scan over %zu blocks x %zu samples:\n", p, n);
  for (const Burst& b : bursts) {
    std::size_t first_hot = p, last_hot = 0;
    for (std::size_t blk = 0; blk < p; ++blk) {
      const auto spec = spectra.output(blk);
      const double re = trace::as_f64(spec[2 * b.bin]);
      const double im = trace::as_f64(spec[2 * b.bin + 1]);
      const double mag = std::sqrt(re * re + im * im);
      if (mag > static_cast<double>(n) / 4.0) {
        first_hot = std::min(first_hot, blk);
        last_hot = std::max(last_hot, blk);
      }
    }
    std::printf("  bin %3zu: hot blocks [%zu, %zu]  (injected [%zu, %zu))\n", b.bin,
                first_hot, last_hot, b.begin_block, b.end_block);
    if (first_hot != b.begin_block || last_hot + 1 != b.end_block) {
      std::printf("  detection mismatch!\n");
      return 1;
    }
  }

  // 5. What would this cost on the machine models?
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  std::printf("\nsimulated bulk FFT (t = %llu memory steps per block):\n",
              static_cast<unsigned long long>(algos::fft_memory_steps(n)));
  for (const auto arr : {bulk::Arrangement::kRowWise, bulk::Arrangement::kColumnWise}) {
    std::printf("  %-12s %s\n", to_string(arr).c_str(),
                format_seconds(gpu.estimate_seconds(program, p, arr)).c_str());
  }
  std::printf("ok\n");
  return 0;
}

// Quickstart: bulk-execute the paper's prefix-sums algorithm for p inputs,
// compare the coalesced (column-wise) and non-coalesced (row-wise)
// arrangements on the simulated UMM, and verify outputs against a native
// sequential run.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <span>
#include <vector>

#include "algos/prefix_sums.hpp"
#include "bulk/bulk.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"
#include "trace/value.hpp"
#include "umm/cost_model.hpp"

int main() {
  using namespace obx;

  const std::size_t n = 64;   // elements per input
  const std::size_t p = 512;  // number of inputs (lanes)

  // 1. Build the oblivious program once; it is shared by every executor.
  const trace::Program program = algos::prefix_sums_program(n);
  std::printf("program: %s, t = %llu memory steps per input\n", program.name.c_str(),
              static_cast<unsigned long long>(algos::prefix_sums_memory_steps(n)));

  // 2. Make p random inputs, lane-major flat.
  Rng rng(2026);
  std::vector<Word> inputs;
  inputs.reserve(p * n);
  for (std::size_t j = 0; j < p; ++j) {
    const auto one = algos::prefix_sums_random_input(n, rng);
    inputs.insert(inputs.end(), one.begin(), one.end());
  }

  // 3. Bulk-execute on the host (functional results).
  const bulk::BulkOutputs outputs =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 4. Verify a few lanes against the native sequential algorithm.
  std::size_t verified = 0;
  for (std::size_t j = 0; j < p; j += 37) {
    const auto expected =
        algos::prefix_sums_reference(n, std::span<const Word>(inputs).subspan(j * n, n));
    const auto got = outputs.output(j);
    for (std::size_t i = 0; i < n; ++i) {
      if (got[i] != expected[i]) {
        std::printf("MISMATCH at lane %zu element %zu\n", j, i);
        return 1;
      }
    }
    ++verified;
  }
  std::printf("verified %zu lanes bit-exact against the sequential reference\n", verified);

  // 5. Time both arrangements on the simulated GPU (the paper's comparison).
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  const TimeUnits row = gpu.estimate_units(program, p, bulk::Arrangement::kRowWise);
  const TimeUnits col = gpu.estimate_units(program, p, bulk::Arrangement::kColumnWise);
  std::printf("row-wise    : %12llu time units  (%s)\n",
              static_cast<unsigned long long>(row),
              format_seconds(gpu.seconds_from_units(row)).c_str());
  std::printf("column-wise : %12llu time units  (%s)\n",
              static_cast<unsigned long long>(col),
              format_seconds(gpu.seconds_from_units(col)).c_str());
  std::printf("coalescing advantage: %.1fx (machine width w = %u)\n",
              static_cast<double>(row) / static_cast<double>(col),
              gpu.spec().memory.width);
  return 0;
}

// Bulk routing tables: all-pairs shortest paths for a fleet of small
// overlay networks at once.
//
// Each of 256 regions has its own latency graph over 24 nodes; the
// oblivious Floyd-Warshall program is bulk-executed across all regions, and
// the resulting distance matrices answer routing queries.  A few properties
// of shortest-path metrics (triangle inequality, idempotence under a second
// relaxation pass via concat_programs) are checked on the way.
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "algos/floyd_warshall.hpp"
#include "bulk/bulk.hpp"
#include "common/rng.hpp"
#include "trace/interpreter.hpp"
#include "trace/value.hpp"

int main() {
  using namespace obx;
  const std::size_t n = 24;   // nodes per region
  const std::size_t p = 256;  // regions

  const trace::Program program = algos::floyd_warshall_program(n);

  // 1. Build the regional graphs.
  Rng rng(606);
  std::vector<Word> inputs;
  inputs.reserve(p * n * n);
  for (std::size_t r = 0; r < p; ++r) {
    const auto g = algos::floyd_warshall_random_input(n, rng);
    inputs.insert(inputs.end(), g.begin(), g.end());
  }

  // 2. Bulk all-pairs shortest paths.
  const bulk::BulkOutputs tables =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 3. Validate metric properties on every region.
  std::size_t reachable_pairs = 0, total_pairs = 0;
  for (std::size_t r = 0; r < p; ++r) {
    const auto d = tables.output(r);
    auto at = [&](std::size_t i, std::size_t j) { return trace::as_f64(d[i * n + j]); };
    for (std::size_t i = 0; i < n; ++i) {
      if (at(i, i) != 0.0) {
        std::printf("region %zu: nonzero self-distance at %zu\n", r, i);
        return 1;
      }
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        ++total_pairs;
        if (std::isfinite(at(i, j))) ++reachable_pairs;
        // Triangle inequality through an arbitrary midpoint.
        const std::size_t k = (i + j) % n;
        if (at(i, j) > at(i, k) + at(k, j) + 1e-9) {
          std::printf("region %zu: triangle violation %zu->%zu via %zu\n", r, i, j, k);
          return 1;
        }
      }
    }
  }
  std::printf("computed routing tables for %zu regions x %zu nodes; %.1f%% of "
              "pairs reachable\n",
              p, n, 100.0 * static_cast<double>(reachable_pairs) /
                        static_cast<double>(total_pairs));

  // 4. Shortest-path matrices are a fixed point: a second oblivious
  //    relaxation pass (program composed with itself via concat_programs)
  //    must not find a shorter route.  Tolerance: re-summing a path in a
  //    different association order can differ in the last ulp.
  const trace::Program twice = trace::concat_programs(program, program);
  const std::span<const Word> region0(inputs.data(), n * n);
  const auto once_run = trace::interpret(program, region0);
  const auto twice_run = trace::interpret(twice, region0);
  double worst = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    const double a = trace::as_f64(once_run.memory[i]);
    const double b = trace::as_f64(twice_run.memory[i]);
    if (std::isfinite(a) || std::isfinite(b)) {
      worst = std::max(worst, std::abs(a - b) / std::max(1.0, std::abs(a)));
    }
  }
  if (worst > 1e-12) {
    std::printf("second relaxation pass moved distances by %.3e!\n", worst);
    return 1;
  }
  std::printf("fixed-point check: a second relaxation pass moves nothing "
              "(max rel diff %.1e)\n", worst);

  // 5. Answer a routing query from the precomputed table.
  const auto d0 = tables.output(7);
  std::printf("sample query, region 7: dist(3 -> 19) = %.3f\n",
              trace::as_f64(d0[3 * n + 19]));
  std::printf("ok\n");
  return 0;
}

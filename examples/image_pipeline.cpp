// Image pipeline: integral images for a tile stream, with bounded memory.
//
// A camera feed is processed as a stream of 32x32 tiles.  For each tile the
// oblivious summed-area algorithm produces the integral image, from which
// arbitrary box sums cost 4 lookups — the classic Viola-Jones front end.
// The StreamingExecutor keeps only a small batch of tiles resident, so an
// arbitrarily long stream runs in constant memory.
#include <cmath>
#include <cstdio>
#include <vector>

#include "algos/summed_area.hpp"
#include "bulk/streaming_executor.hpp"
#include "common/rng.hpp"
#include "trace/value.hpp"

namespace {

using namespace obx;

constexpr std::size_t kSide = 32;
constexpr std::size_t kTiles = 2048;
constexpr std::size_t kResident = 128;  // peak memory: 128 tiles at a time

/// Deterministic synthetic tile: smooth gradient + one bright square.
double pixel(std::size_t tile, std::size_t r, std::size_t c) {
  const double base = static_cast<double>((r + c + tile) % 17);
  const std::size_t box = tile % (kSide - 8);
  const bool bright = r >= box && r < box + 8 && c >= box && c < box + 8;
  return base + (bright ? 100.0 : 0.0);
}

/// Box sum from an integral image over [r0, r1) x [c0, c1).
double box_sum(std::span<const Word> integral, std::size_t r0, std::size_t c0,
               std::size_t r1, std::size_t c1) {
  auto at = [&](std::size_t r, std::size_t c) -> double {
    if (r == 0 || c == 0) return 0.0;
    return trace::as_f64(integral[(r - 1) * kSide + (c - 1)]);
  };
  return at(r1, c1) - at(r0, c1) - at(r1, c0) + at(r0, c0);
}

}  // namespace

int main() {
  using namespace obx;
  const trace::Program program = algos::summed_area_program(kSide);

  // Stream all tiles through the bulk executor, keeping kResident resident.
  std::vector<std::vector<Word>> integrals(kTiles);
  bulk::StreamingExecutor exec(
      bulk::StreamingExecutor::Options{.max_resident_lanes = kResident});
  const auto stats = exec.run(
      program, kTiles,
      [&](Lane tile, std::span<Word> dst) {
        for (std::size_t r = 0; r < kSide; ++r) {
          for (std::size_t c = 0; c < kSide; ++c) {
            dst[r * kSide + c] = trace::from_f64(pixel(tile, r, c));
          }
        }
      },
      [&](Lane tile, std::span<const Word> out) {
        integrals[tile].assign(out.begin(), out.end());
      });
  std::printf("streamed %zu tiles in %zu batches (%zu resident), %.1f ms "
              "(%.1f ms execute + %.1f ms callbacks)\n",
              stats.lanes, stats.batches, kResident, stats.seconds() * 1e3,
              stats.execute_seconds * 1e3, stats.callback_seconds * 1e3);

  // Verify random box queries against direct summation, and find the bright
  // square of a few tiles with an 8x8 sliding box.
  Rng rng(3);
  std::size_t queries = 0;
  for (int q = 0; q < 500; ++q) {
    const std::size_t tile = rng.next_below(kTiles);
    std::size_t r0 = rng.next_below(kSide), r1 = rng.next_below(kSide);
    std::size_t c0 = rng.next_below(kSide), c1 = rng.next_below(kSide);
    if (r0 > r1) std::swap(r0, r1);
    if (c0 > c1) std::swap(c0, c1);
    ++r1, ++c1;
    double direct = 0.0;
    for (std::size_t r = r0; r < r1; ++r) {
      for (std::size_t c = c0; c < c1; ++c) direct += pixel(tile, r, c);
    }
    const double fast = box_sum(integrals[tile], r0, c0, r1, c1);
    if (std::abs(fast - direct) > 1e-6 * std::max(1.0, std::abs(direct))) {
      std::printf("box query mismatch on tile %zu: %f vs %f\n", tile, fast, direct);
      return 1;
    }
    ++queries;
  }
  std::printf("%zu random box queries verified against direct summation\n", queries);

  std::size_t detections = 0;
  for (std::size_t tile = 0; tile < kTiles; tile += 307) {
    double best = -1.0;
    std::size_t best_pos = 0;
    for (std::size_t pos = 0; pos + 8 <= kSide; ++pos) {
      const double s = box_sum(integrals[tile], pos, pos, pos + 8, pos + 8);
      if (s > best) {
        best = s;
        best_pos = pos;
      }
    }
    if (best_pos == tile % (kSide - 8)) ++detections;
  }
  std::printf("bright-square detector located %zu/%zu probes correctly\n", detections,
              (kTiles + 306) / 307);
  std::printf("ok\n");
  return detections == (kTiles + 306) / 307 ? 0 : 1;
}

// Bulk encryption: the paper's "encryption/decryption" task family.
//
// p independent messages (e.g. per-session payloads) are TEA-encrypted in
// bulk, each with its own key — one lane per message.  Obliviousness means
// the access pattern leaks nothing about keys or plaintexts, and the bulk
// executor turns the cipher's straight-line rounds into lockstep SIMD work.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "algos/tea_cipher.hpp"
#include "bulk/bulk.hpp"
#include "bulk/timing_estimator.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "gpusim/virtual_gpu.hpp"

int main() {
  using namespace obx;

  const std::size_t blocks = 16;  // 128 bytes of payload per message
  const std::size_t p = 1024;     // messages

  const trace::Program program = algos::tea_program(blocks);

  // 1. Build p messages: random key + a recognisable plaintext pattern.
  Rng rng(1337);
  std::vector<Word> inputs;
  inputs.reserve(p * program.input_words);
  std::vector<std::vector<Word>> plain(p);
  for (std::size_t m = 0; m < p; ++m) {
    std::vector<Word> one = algos::tea_random_input(blocks, rng);
    for (std::size_t b = 0; b < blocks; ++b) {
      one[4 + 2 * b] = (m << 8) | b;  // traceable plaintext
      one[4 + 2 * b + 1] = 0x5a5a5a5au;
    }
    plain[m] = one;
    inputs.insert(inputs.end(), one.begin(), one.end());
  }

  // 2. Bulk-encrypt.
  const bulk::BulkOutputs cipher =
      bulk::run_bulk(program, inputs, p, bulk::Arrangement::kColumnWise);

  // 3. Verify a sample of lanes against the native cipher, then decrypt one
  //    message end-to-end.
  for (std::size_t m = 0; m < p; m += 111) {
    const auto expected = algos::tea_reference(blocks, plain[m]);
    const auto got = cipher.output(m);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (got[i] != expected[i]) {
        std::printf("ciphertext mismatch at message %zu word %zu\n", m, i);
        return 1;
      }
    }
  }

  const std::size_t probe = 777;
  std::uint32_t k[4];
  for (int i = 0; i < 4; ++i) k[i] = static_cast<std::uint32_t>(plain[probe][static_cast<std::size_t>(i)]);
  const auto ct = cipher.output(probe);
  std::size_t restored = 0;
  for (std::size_t b = 0; b < blocks; ++b) {
    std::uint32_t v[2] = {static_cast<std::uint32_t>(ct[2 * b]),
                          static_cast<std::uint32_t>(ct[2 * b + 1])};
    // TEA decryption (inverse rounds).
    std::uint32_t sum = 0x9e3779b9u * 32;
    for (int r = 0; r < 32; ++r) {
      v[1] -= ((v[0] << 4) + k[2]) ^ (v[0] + sum) ^ ((v[0] >> 5) + k[3]);
      v[0] -= ((v[1] << 4) + k[0]) ^ (v[1] + sum) ^ ((v[1] >> 5) + k[1]);
      sum -= 0x9e3779b9u;
    }
    if (v[0] == ((probe << 8) | b) && v[1] == 0x5a5a5a5au) ++restored;
  }
  std::printf("encrypted %zu messages x %zu blocks; decryption restored %zu/%zu "
              "blocks of message %zu\n",
              p, blocks, restored, blocks, probe);
  if (restored != blocks) return 1;

  // 4. Cost on the model: TEA is compute-bound — show both accountings.
  const gpusim::VirtualGpu gpu(gpusim::gtx_titan());
  umm::MachineConfig charged = gpu.spec().memory;
  charged.count_compute = true;
  const bulk::Layout layout = bulk::make_layout(program, p, bulk::Arrangement::kColumnWise);
  const auto free_compute =
      bulk::TimingEstimator(umm::Model::kUmm, gpu.spec().memory, layout).run(program);
  const auto paid_compute =
      bulk::TimingEstimator(umm::Model::kUmm, charged, layout).run(program);
  std::printf("simulated units, column-wise: %llu (memory only) vs %llu (compute "
              "charged; %llu register steps per message)\n",
              static_cast<unsigned long long>(free_compute.time_units),
              static_cast<unsigned long long>(paid_compute.time_units),
              static_cast<unsigned long long>(paid_compute.compute_steps));
  std::printf("ok\n");
  return 0;
}
